//! The interpreter: executes a lowered [`Program`] under a chosen memory
//! model, driven by a [`Scheduler`] and observed by a [`Monitor`].
//!
//! Execution proceeds in *steps*. Each step either advances one runnable
//! thread by one instruction/terminator, or drains one buffered store to
//! memory (TSO/PSO). The set of enabled steps is recomputed after every
//! step, so a scheduler sees every interleaving point — including the
//! relaxed-memory visibility points that make Dekker-style algorithms fail
//! under TSO/PSO.
//!
//! Two execution backends share this interface (see [`Backend`]): the
//! original tree walker over the CFG, and the default flat-bytecode
//! interpreter (see [`crate::bytecode`]) whose inner loop fetches `Copy`
//! ops by absolute address. Both produce bit-identical schedules, stats,
//! and monitor event streams; the tree walker is retained as the
//! differential baseline.

use crate::bytecode::{CompiledProgram, Op, Rv};
use crate::mem::{Addr, BufferedStore, Layout, MemModel, Memory, StoreBuffer};
use crate::monitor::{AccessEvent, Monitor, SyncEvent};
use crate::sched::{Action, Scheduler};
use crate::stats::ExecStats;
use crate::thread::{Frame, Lineage, Status, Thread, ThreadId};
use clap_ir::{
    eval_binop, eval_unop, AssertId, AtomicOrd, BlockId, ChanId, CondId, FuncId, GlobalId, Instr,
    LocalId, MutexId, Operand, Program, Rvalue, Terminator,
};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Every thread exited.
    Completed,
    /// An assert evaluated to false — the bug manifested.
    AssertFailed {
        /// Which assert site failed.
        assert: AssertId,
        /// The thread that executed it.
        thread: ThreadId,
    },
    /// No thread can make progress.
    Deadlock,
    /// The step budget was exhausted.
    StepLimit,
    /// A runtime fault (out-of-bounds index, unlock of unowned mutex, …).
    Fault {
        /// The faulting thread.
        thread: ThreadId,
        /// Description.
        message: String,
    },
}

impl Outcome {
    /// `true` for [`Outcome::AssertFailed`].
    pub fn is_failure(&self) -> bool {
        matches!(self, Outcome::AssertFailed { .. })
    }
}

/// Which globals count as *shared* (and therefore as SAPs and as buffered
/// under TSO/PSO). Non-shared globals behave like thread-local storage:
/// direct memory access, no events, no buffering.
#[derive(Debug, Clone, Default)]
pub enum SharedSpec {
    /// Every global is treated as shared.
    #[default]
    All,
    /// Only the listed globals are shared (output of the static sharing
    /// analysis).
    Set(HashSet<GlobalId>),
}

impl SharedSpec {
    /// `true` if `global` is shared under this spec.
    pub fn contains(&self, global: GlobalId) -> bool {
        match self {
            SharedSpec::All => true,
            SharedSpec::Set(set) => set.contains(&global),
        }
    }
}

/// Which interpreter executes the program. Both backends implement the
/// exact same step semantics — same enabled actions, same stats, same
/// monitor events at the same points — so they are interchangeable under
/// any scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Walk the CFG directly (`functions[f].blocks[b].instrs[ip]`). The
    /// original interpreter, kept as the differential-testing baseline.
    Tree,
    /// Execute flat bytecode compiled once per program (see
    /// [`crate::compile`]): index-advancing dispatch over `Copy` ops with
    /// pre-resolved jump targets.
    #[default]
    Bytecode,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Tree => write!(f, "tree"),
            Backend::Bytecode => write!(f, "bytecode"),
        }
    }
}

/// What executing a thread's next step would do — used by replay schedulers
/// to gate threads on the computed schedule without executing anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepPreview {
    /// Pure computation, call/return, non-shared access, or a yield:
    /// invisible to other threads.
    Invisible,
    /// A shared store that would enter the store buffer (TSO/PSO):
    /// invisible now, visible at its drain. Consumes the given
    /// program-order SAP index.
    BufferedStore {
        /// The store's per-thread SAP index.
        po_index: u64,
    },
    /// A visible SAP would execute.
    Sap {
        /// The SAP's per-thread index.
        po_index: u64,
        /// What kind of SAP.
        kind: SapPreviewKind,
    },
    /// The step would block the thread (lock held, join target running,
    /// wait reacquisition contended) without consuming a SAP.
    WouldBlock,
    /// An assert would execute (invisible for ordering purposes).
    AssertStep,
    /// The thread's final `return` would execute, flushing its store
    /// buffer — replay schedulers must hold this until every buffered
    /// store has drained at its scheduled position.
    ThreadExit,
}

/// Kinds of visible SAPs, for preview purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SapPreviewKind {
    /// Shared load.
    Read(Addr),
    /// Shared store that is immediately visible (SC).
    Write(Addr),
    /// Mutex acquisition.
    Lock(MutexId),
    /// Mutex release.
    Unlock(MutexId),
    /// Thread creation.
    Fork,
    /// Join completion.
    Join,
    /// Cond-wait release phase (releases the mutex, parks).
    WaitRelease(CondId),
    /// Cond-wait reacquisition phase (completes the wait).
    WaitAcquire(CondId),
    /// Signal.
    Signal(CondId),
    /// Broadcast.
    Broadcast(CondId),
    /// Blocking channel send that would complete.
    ChanSend(ChanId),
    /// Blocking channel receive that would complete.
    ChanRecv(ChanId),
    /// Non-blocking channel send (executes regardless of channel state).
    ChanTrySend(ChanId),
    /// Non-blocking channel receive (executes regardless of channel state).
    ChanTryRecv(ChanId),
    /// Channel close.
    ChanClose(ChanId),
    /// Actor spawn.
    SpawnActor,
    /// Mailbox append to another thread.
    MailboxSend,
    /// Mailbox dequeue that would complete.
    MailboxRecv,
    /// Atomic load (value picked among currently-visible stores).
    AtomicLoad(Addr, AtomicOrd),
    /// Atomic store that is immediately visible (`seq_cst` under C11; any
    /// ordering under SC/TSO/PSO, where atomics are full fences).
    AtomicStore(Addr, AtomicOrd),
    /// Atomic fetch-add (reads and writes the location in one step).
    AtomicRmw(Addr, AtomicOrd),
    /// Atomic compare-and-swap (both outcomes reachable, chosen by the
    /// visible value at execution time).
    AtomicCas(Addr, AtomicOrd),
}

/// A captured execution state (see [`Vm::snapshot`]): everything mutable
/// about a run, detached from the program (which snapshots share).
///
/// The state is flattened into a handful of pooled arrays — per-thread
/// metadata records index ranges of shared `locals` / `lineage` / store
/// pools — so capture is a few `extend_from_slice` calls and restore
/// ([`Vm::restore`]) rewrites the VM in place without allocating once the
/// capacities have warmed up. Snapshot-heavy loops (the exploration
/// sweep's per-seed reset, the oracle's DFS backtracking) reuse one
/// `Snapshot` via [`Vm::snapshot_into`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    memory: Vec<i64>,
    threads: Vec<ThreadImage>,
    frames: Vec<FrameImage>,
    locals: Vec<i64>,
    lineages: Vec<u32>,
    stores: Vec<BufferedStore>,
    cond_waiters: Vec<ThreadId>,
    cond_lens: Vec<u32>,
    mutex_owner: Vec<Option<ThreadId>>,
    chan_items: Vec<i64>,
    chan_lens: Vec<u32>,
    chan_closed: Vec<bool>,
    /// Pooled mailbox contents, one length per thread (same order as
    /// [`Snapshot::threads`]).
    mailbox_items: Vec<i64>,
    mailbox_lens: Vec<u32>,
    stats: ExecStats,
    announced_main: bool,
}

/// Flattened per-thread record: scalar state plus ranges into the
/// snapshot's pooled arrays.
#[derive(Debug, Clone, Copy)]
struct ThreadImage {
    id: ThreadId,
    status: Status,
    forks: u32,
    next_sap_index: u64,
    waiting_reacquire: Option<MutexId>,
    lineage_start: u32,
    lineage_len: u32,
    frame_start: u32,
    frame_len: u32,
    store_start: u32,
    store_len: u32,
}

/// Flattened activation record; `pc` is re-derived from `(func, block,
/// ip)` at restore time so snapshots are interchangeable across backends.
#[derive(Debug, Clone, Copy)]
struct FrameImage {
    func: FuncId,
    block: BlockId,
    ip: u32,
    ret_dst: Option<LocalId>,
    locals_start: u32,
    locals_len: u32,
}

impl Snapshot {
    /// The counters at capture time.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Number of threads alive or exited at capture time.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }
}

/// Wall-time attribution of the [`Vm::run`] inner loop, accumulated
/// while profiling is on (see [`Vm::enable_step_profile`]). The loop has
/// exactly three phases per scheduler decision — rebuild the enabled
/// action set, ask the scheduler to pick, execute the choice — and the
/// profile splits wall time across them. Accumulates across runs (and
/// across [`Vm::reset`]) until taken, which is what a sweep worker wants:
/// one profile covering every seed it ran.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepProfile {
    /// Rebuilding the enabled-action set after each step.
    pub rebuild: Duration,
    /// Inside `scheduler.pick` (RNG draws, stickiness logic).
    pub pick: Duration,
    /// Executing the chosen action (instruction step or buffer drain),
    /// including monitor callbacks.
    pub exec: Duration,
    /// Scheduler decisions profiled.
    pub steps: u64,
}

/// The virtual machine.
#[derive(Debug)]
pub struct Vm<'p> {
    program: &'p Program,
    compiled: Arc<CompiledProgram>,
    backend: Backend,
    layout: Layout,
    memory: Memory,
    model: MemModel,
    /// `shared.contains(g)` precomputed per global: the hot paths test a
    /// bool slot instead of hashing into a `HashSet`.
    shared_mask: Vec<bool>,
    threads: Vec<Thread>,
    buffers: Vec<StoreBuffer>,
    mutex_owner: Vec<Option<ThreadId>>,
    cond_queue: Vec<VecDeque<ThreadId>>,
    /// Per-channel FIFO contents (bounded by the declared capacity; a
    /// capacity-0 channel holds at most one in-flight rendezvous value).
    chan_queues: Vec<VecDeque<i64>>,
    chan_closed: Vec<bool>,
    /// Per-thread unbounded mailboxes, in lockstep with `threads`.
    mailboxes: Vec<VecDeque<i64>>,
    stats: ExecStats,
    outcome: Option<Outcome>,
    step_limit: u64,
    announced_main: bool,
    /// Reused by [`Vm::run`] across steps (and across runs of the same
    /// VM) so the enabled-action scan stops allocating per step.
    actions_scratch: Vec<Action>,
    /// `Some` while step profiling is on; [`Vm::run`] accumulates into it.
    step_profile: Option<StepProfile>,
}

impl<'p> Vm<'p> {
    /// Creates a VM for `program` under `model`, treating all globals as
    /// shared.
    pub fn new(program: &'p Program, model: MemModel) -> Self {
        Self::with_shared(program, model, SharedSpec::All)
    }

    /// Creates a VM with an explicit shared-variable specification.
    pub fn with_shared(program: &'p Program, model: MemModel, shared: SharedSpec) -> Self {
        Self::with_backend(program, model, shared, Backend::default())
    }

    /// Creates a VM with an explicit execution backend (compiling the
    /// program's bytecode itself).
    pub fn with_backend(
        program: &'p Program,
        model: MemModel,
        shared: SharedSpec,
        backend: Backend,
    ) -> Self {
        let compiled = Arc::new(CompiledProgram::new(program));
        Self::with_compiled(program, compiled, model, shared, backend)
    }

    /// Creates a VM reusing an already-compiled program — the cheap
    /// constructor when many VMs execute the same program (exploration
    /// workers, replay validators, the serving loop).
    ///
    /// # Panics
    ///
    /// Panics when `compiled` was not produced from `program`.
    pub fn with_compiled(
        program: &'p Program,
        compiled: Arc<CompiledProgram>,
        model: MemModel,
        shared: SharedSpec,
        backend: Backend,
    ) -> Self {
        let expected: usize = program
            .functions
            .iter()
            .flat_map(|f| f.blocks.iter())
            .map(|b| b.instrs.len() + 1)
            .sum();
        assert_eq!(
            compiled.len(),
            expected,
            "compiled bytecode is from a different program"
        );
        let layout = Layout::new(program);
        let memory = Memory::new(program, &layout);
        let main_fn = program.function(program.main);
        let mut frame = Frame::new(program.main, main_fn.entry, main_fn.locals.len(), &[]);
        frame.pc = compiled.func(program.main).entry;
        let main = Thread::new(ThreadId::MAIN, Lineage::main(), frame);
        let stats = ExecStats {
            threads: 1,
            ..ExecStats::default()
        };
        let shared_mask = (0..program.globals.len())
            .map(|i| shared.contains(GlobalId::from(i)))
            .collect();
        Vm {
            program,
            compiled,
            backend,
            layout,
            memory,
            model,
            shared_mask,
            threads: vec![main],
            buffers: vec![StoreBuffer::default()],
            mutex_owner: vec![None; program.mutexes.len()],
            cond_queue: vec![VecDeque::new(); program.conds.len()],
            chan_queues: vec![VecDeque::new(); program.chans.len()],
            chan_closed: vec![false; program.chans.len()],
            mailboxes: vec![VecDeque::new()],
            stats,
            outcome: None,
            step_limit: 200_000_000,
            announced_main: false,
            actions_scratch: Vec::new(),
            step_profile: None,
        }
    }

    /// Caps the number of scheduler steps before the run aborts with
    /// [`Outcome::StepLimit`].
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The memory model in effect.
    pub fn model(&self) -> MemModel {
        self.model
    }

    /// The execution backend in effect.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The compiled bytecode, shareable with other VMs over the same
    /// program via [`Vm::with_compiled`].
    pub fn compiled(&self) -> &Arc<CompiledProgram> {
        &self.compiled
    }

    #[inline]
    fn is_shared(&self, global: GlobalId) -> bool {
        self.shared_mask[global.index()]
    }

    /// The address layout (for monitors that need to resolve addresses).
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// All threads created so far, indexed by [`ThreadId`].
    pub fn threads(&self) -> &[Thread] {
        &self.threads
    }

    /// One thread's state.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn thread(&self, t: ThreadId) -> &Thread {
        &self.threads[t.index()]
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// The final outcome, once the run has ended.
    pub fn outcome(&self) -> Option<&Outcome> {
        self.outcome.as_ref()
    }

    /// Reads a global scalar / array element directly from memory
    /// (ignores store buffers — callers usually inspect state after the
    /// run, when buffers are empty).
    ///
    /// # Panics
    ///
    /// Panics if the global/offset is out of range.
    pub fn read_global(&self, global: GlobalId, offset: usize) -> i64 {
        let addr = self
            .layout
            .addr(global, offset as i64)
            .expect("global offset in range");
        self.memory.read(addr)
    }

    /// The currently enabled actions.
    pub fn enabled_actions(&self) -> Vec<Action> {
        let mut actions = Vec::new();
        self.fill_enabled_actions(&mut actions);
        actions
    }

    /// [`Vm::enabled_actions`] into a caller-owned buffer (cleared
    /// first): the allocation-free variant for enumeration loops that
    /// query the enabled set every step.
    pub fn enabled_actions_into(&self, out: &mut Vec<Action>) {
        out.clear();
        self.fill_enabled_actions(out);
    }

    /// Appends the enabled actions to `out` (same order as
    /// [`Vm::enabled_actions`]: runnable steps in thread order, then
    /// drains in thread order) without allocating.
    fn fill_enabled_actions(&self, out: &mut Vec<Action>) {
        for t in &self.threads {
            if t.is_runnable() {
                out.push(Action::Step(t.id));
            }
        }
        if self.model.uses_buffers() {
            for (i, buf) in self.buffers.iter().enumerate() {
                let owner = ThreadId::from(i);
                buf.for_each_drainable(self.model, |addr| out.push(Action::Drain(owner, addr)));
            }
        }
    }

    /// The per-thread SAP index of the oldest buffered store to `addr` by
    /// thread `t`, if one exists (what a [`Action::Drain`] would commit).
    pub fn drain_preview(&self, t: ThreadId, addr: Addr) -> Option<u64> {
        self.buffers[t.index()]
            .iter()
            .find(|s| s.addr == addr)
            .map(|s| s.po_index)
    }

    /// Number of stores sitting in thread `t`'s store buffer.
    pub fn buffered_store_count(&self, t: ThreadId) -> usize {
        self.buffers[t.index()].len()
    }

    /// Thread `t`'s store buffer, oldest entry first.
    ///
    /// Enumeration tools use this to account for stores that will be
    /// committed by an implicit fence (lock/unlock/join/exit) rather than
    /// by an explicit [`Action::Drain`].
    pub fn buffer(&self, t: ThreadId) -> &StoreBuffer {
        &self.buffers[t.index()]
    }

    /// Classifies what stepping thread `t` would do, without side effects.
    ///
    /// Both backends share this implementation: it classifies the flat
    /// bytecode op at the thread's position (for the tree walker the
    /// address is re-derived from `(func, block, ip)`), which is exactly
    /// the instruction or terminator the step would execute.
    ///
    /// # Panics
    ///
    /// Panics if `t` has exited.
    pub fn preview_step(&self, t: ThreadId) -> StepPreview {
        let thread = &self.threads[t.index()];
        assert!(!thread.frames.is_empty(), "preview of an exited thread");
        let frame = thread.frame();
        let pc = match self.backend {
            Backend::Bytecode => frame.pc,
            Backend::Tree => self.compiled.pc_of(frame.func, frame.block, frame.ip),
        };
        let sap = thread.next_sap_index;
        match self.compiled.op(pc) {
            // Terminators: a thread's final `return` flushes its buffer.
            Op::Jump { .. } | Op::Branch { .. } => StepPreview::Invisible,
            Op::Return { .. } => {
                if thread.frames.len() == 1 {
                    StepPreview::ThreadExit
                } else {
                    StepPreview::Invisible
                }
            }
            Op::Assign { .. } | Op::Call { .. } | Op::Yield => StepPreview::Invisible,
            Op::Assert { .. } => StepPreview::AssertStep,
            Op::Load { global, index, .. } => {
                if !self.is_shared(global) {
                    return StepPreview::Invisible;
                }
                let offset = index.map(|op| operand(frame, op)).unwrap_or(0);
                match self.layout.addr(global, offset) {
                    Some(addr) => StepPreview::Sap {
                        po_index: sap,
                        kind: SapPreviewKind::Read(addr),
                    },
                    None => StepPreview::Invisible, // will fault on execution
                }
            }
            Op::Store { global, index, .. } => {
                if !self.is_shared(global) {
                    return StepPreview::Invisible;
                }
                if self.model.buffered() {
                    return StepPreview::BufferedStore { po_index: sap };
                }
                let offset = index.map(|op| operand(frame, op)).unwrap_or(0);
                match self.layout.addr(global, offset) {
                    Some(addr) => StepPreview::Sap {
                        po_index: sap,
                        kind: SapPreviewKind::Write(addr),
                    },
                    None => StepPreview::Invisible,
                }
            }
            Op::Lock(m) => {
                if self.mutex_owner[m.index()].is_none() {
                    StepPreview::Sap {
                        po_index: sap,
                        kind: SapPreviewKind::Lock(m),
                    }
                } else {
                    StepPreview::WouldBlock
                }
            }
            Op::Unlock(m) => StepPreview::Sap {
                po_index: sap,
                kind: SapPreviewKind::Unlock(m),
            },
            Op::Fork { .. } => StepPreview::Sap {
                po_index: sap,
                kind: SapPreviewKind::Fork,
            },
            Op::Join { handle } => {
                let target = operand(frame, handle);
                let exited = self
                    .threads
                    .get(target as usize)
                    .map(|th| th.status == Status::Exited)
                    .unwrap_or(true); // invalid handle faults at execution
                if exited {
                    StepPreview::Sap {
                        po_index: sap,
                        kind: SapPreviewKind::Join,
                    }
                } else {
                    StepPreview::WouldBlock
                }
            }
            Op::Wait { cond, .. } => {
                if let Some(m) = thread.waiting_reacquire {
                    if self.mutex_owner[m.index()].is_none() {
                        StepPreview::Sap {
                            po_index: sap,
                            kind: SapPreviewKind::WaitAcquire(cond),
                        }
                    } else {
                        StepPreview::WouldBlock
                    }
                } else {
                    StepPreview::Sap {
                        po_index: sap,
                        kind: SapPreviewKind::WaitRelease(cond),
                    }
                }
            }
            Op::Signal(c) => StepPreview::Sap {
                po_index: sap,
                kind: SapPreviewKind::Signal(c),
            },
            Op::Broadcast(c) => StepPreview::Sap {
                po_index: sap,
                kind: SapPreviewKind::Broadcast(c),
            },
            Op::Send { chan, .. } => {
                if self.chan_send_ready(t, chan) {
                    StepPreview::Sap {
                        po_index: sap,
                        kind: SapPreviewKind::ChanSend(chan),
                    }
                } else {
                    StepPreview::WouldBlock
                }
            }
            Op::Recv { chan, .. } => {
                if self.chan_recv_ready(chan) {
                    StepPreview::Sap {
                        po_index: sap,
                        kind: SapPreviewKind::ChanRecv(chan),
                    }
                } else {
                    StepPreview::WouldBlock
                }
            }
            Op::TrySend { chan, .. } => StepPreview::Sap {
                po_index: sap,
                kind: SapPreviewKind::ChanTrySend(chan),
            },
            Op::TryRecv { chan, .. } => StepPreview::Sap {
                po_index: sap,
                kind: SapPreviewKind::ChanTryRecv(chan),
            },
            Op::ChanClose(c) => StepPreview::Sap {
                po_index: sap,
                kind: SapPreviewKind::ChanClose(c),
            },
            Op::SpawnActor { .. } => StepPreview::Sap {
                po_index: sap,
                kind: SapPreviewKind::SpawnActor,
            },
            Op::MailboxSend { .. } => StepPreview::Sap {
                po_index: sap,
                kind: SapPreviewKind::MailboxSend,
            },
            Op::MailboxRecv { .. } => {
                if self.mailboxes[t.index()].is_empty() {
                    StepPreview::WouldBlock
                } else {
                    StepPreview::Sap {
                        po_index: sap,
                        kind: SapPreviewKind::MailboxRecv,
                    }
                }
            }
            Op::AtomicLoad { global, ord, .. } => StepPreview::Sap {
                po_index: sap,
                kind: SapPreviewKind::AtomicLoad(self.atomic_addr(global), ord),
            },
            Op::AtomicStore { global, ord, .. } => {
                if self.atomic_store_buffered(ord) {
                    StepPreview::BufferedStore { po_index: sap }
                } else {
                    StepPreview::Sap {
                        po_index: sap,
                        kind: SapPreviewKind::AtomicStore(self.atomic_addr(global), ord),
                    }
                }
            }
            Op::AtomicRmw { global, ord, .. } => StepPreview::Sap {
                po_index: sap,
                kind: SapPreviewKind::AtomicRmw(self.atomic_addr(global), ord),
            },
            Op::AtomicCas { global, ord, .. } => StepPreview::Sap {
                po_index: sap,
                kind: SapPreviewKind::AtomicCas(self.atomic_addr(global), ord),
            },
        }
    }

    /// When thread `t`'s next step is an assert, returns the assert site
    /// and whether its condition currently evaluates true. `None` when
    /// the thread has exited or the next step is not an assert.
    ///
    /// Replay uses this to distinguish the *expected* failure from an
    /// assert beyond the recorded trace's horizon: the latter has
    /// operands the constraint system never saw, so a schedule-enforcing
    /// scheduler must not let it fire first.
    pub fn assert_preview(&self, t: ThreadId) -> Option<(AssertId, bool)> {
        let thread = &self.threads[t.index()];
        if thread.frames.is_empty() {
            return None;
        }
        let frame = thread.frame();
        let pc = match self.backend {
            Backend::Bytecode => frame.pc,
            Backend::Tree => self.compiled.pc_of(frame.func, frame.block, frame.ip),
        };
        match self.compiled.op(pc) {
            Op::Assert { cond, id } => Some((id, operand(frame, cond) != 0)),
            _ => None,
        }
    }

    /// The flat address of an atomic location (always a scalar, offset 0).
    #[inline]
    fn atomic_addr(&self, global: GlobalId) -> Addr {
        self.layout.addr(global, 0).expect("atomic is a scalar")
    }

    /// `true` when an atomic store with ordering `ord` enters the store
    /// buffer (becoming visible only at a scheduled [`Action::Drain`])
    /// rather than writing memory immediately. Only relaxed/acquire/release
    /// stores under C11 buffer; `seq_cst` is a full fence, and under
    /// SC/TSO/PSO every atomic op acts as a `seq_cst` fence.
    fn atomic_store_buffered(&self, ord: AtomicOrd) -> bool {
        self.model == MemModel::C11 && ord != AtomicOrd::SeqCst
    }

    /// `true` when stepping thread `t`'s `send` on `chan` would complete
    /// rather than park. A send on a closed channel always completes (the
    /// value is silently dropped — the "lost close" failure mode); a
    /// capacity-0 send completes only when the rendezvous slot is free and
    /// some *other* thread is positioned at a `recv` on the same channel.
    fn chan_send_ready(&self, t: ThreadId, chan: ChanId) -> bool {
        if self.chan_closed[chan.index()] {
            return true;
        }
        let cap = self.program.chans[chan.index()].cap;
        if cap == 0 {
            self.chan_queues[chan.index()].is_empty() && self.recv_positioned(t, chan)
        } else {
            self.chan_queues[chan.index()].len() < cap
        }
    }

    /// `true` when a `recv` on `chan` would complete: a value is queued,
    /// or the channel is closed (drained receives yield `-1`).
    fn chan_recv_ready(&self, chan: ChanId) -> bool {
        !self.chan_queues[chan.index()].is_empty() || self.chan_closed[chan.index()]
    }

    /// `true` when some thread other than `sender` sits at a `recv` on
    /// `chan` — either parked there ([`Status::BlockedRecv`]) or runnable
    /// with a `recv` as its next op. The capacity-0 rendezvous partner
    /// test.
    fn recv_positioned(&self, sender: ThreadId, chan: ChanId) -> bool {
        self.threads.iter().any(|th| {
            if th.id == sender || th.frames.is_empty() {
                return false;
            }
            match th.status {
                Status::BlockedRecv(c) => c == chan,
                Status::Runnable => {
                    let fr = th.frame();
                    let pc = match self.backend {
                        Backend::Bytecode => fr.pc,
                        Backend::Tree => self.compiled.pc_of(fr.func, fr.block, fr.ip),
                    };
                    matches!(self.compiled.op(pc), Op::Recv { chan: c, .. } if c == chan)
                }
                _ => false,
            }
        })
    }

    /// Number of values currently queued in `chan`.
    pub fn chan_len(&self, chan: ChanId) -> usize {
        self.chan_queues[chan.index()].len()
    }

    /// `true` once `chan` has been closed.
    pub fn chan_is_closed(&self, chan: ChanId) -> bool {
        self.chan_closed[chan.index()]
    }

    /// Number of messages waiting in thread `t`'s mailbox.
    pub fn mailbox_len(&self, t: ThreadId) -> usize {
        self.mailboxes[t.index()].len()
    }

    /// Runs to completion under `scheduler`, reporting events to `monitor`.
    pub fn run(&mut self, scheduler: &mut dyn Scheduler, monitor: &mut dyn Monitor) -> Outcome {
        if !self.announced_main {
            self.announced_main = true;
            let lineage = self.threads[0].lineage.clone();
            monitor.on_thread_start(ThreadId::MAIN, &lineage, self.program.main);
            monitor.on_func_enter(ThreadId::MAIN, self.program.main);
        }
        // Move the scratch buffer into a local so `scheduler.pick(self, …)`
        // can borrow the whole VM; put it back on every exit path.
        let mut actions = std::mem::take(&mut self.actions_scratch);
        // The profiled loop pays three timer pairs per decision; the
        // default path pays one discriminant test here and nothing inside.
        let profiling = self.step_profile.is_some();
        let outcome = loop {
            if let Some(outcome) = &self.outcome {
                break outcome.clone();
            }
            let t = profiling.then(Instant::now);
            actions.clear();
            self.fill_enabled_actions(&mut actions);
            if let Some(t) = t {
                let p = self.step_profile.as_mut().expect("profiling is on");
                p.rebuild += t.elapsed();
            }
            if actions.is_empty() {
                let all_exited = self.threads.iter().all(|t| t.status == Status::Exited);
                let outcome = if all_exited {
                    Outcome::Completed
                } else {
                    Outcome::Deadlock
                };
                self.outcome = Some(outcome.clone());
                break outcome;
            }
            if self.stats.steps >= self.step_limit {
                self.outcome = Some(Outcome::StepLimit);
                break Outcome::StepLimit;
            }
            let t = profiling.then(Instant::now);
            let choice = scheduler.pick(self, &actions);
            if let Some(t) = t {
                let p = self.step_profile.as_mut().expect("profiling is on");
                p.pick += t.elapsed();
                p.steps += 1;
            }
            let t0 = profiling.then(Instant::now);
            match actions[choice] {
                Action::Step(t) => self.step_thread(t, monitor),
                Action::Drain(t, addr) => self.drain(t, addr, monitor),
            }
            if let Some(t0) = t0 {
                let p = self.step_profile.as_mut().expect("profiling is on");
                p.exec += t0.elapsed();
            }
        };
        self.actions_scratch = actions;
        outcome
    }

    /// Turns on per-step wall-time attribution for subsequent [`Vm::run`]
    /// calls; see [`StepProfile`] for what is measured. Idempotent: the
    /// accumulated profile is kept when already on.
    pub fn enable_step_profile(&mut self) {
        if self.step_profile.is_none() {
            self.step_profile = Some(StepProfile::default());
        }
    }

    /// Takes the accumulated profile and turns profiling off. `None` when
    /// profiling was never enabled.
    pub fn take_step_profile(&mut self) -> Option<StepProfile> {
        self.step_profile.take()
    }

    /// Captures the complete mutable execution state — the checkpointing
    /// primitive of the paper's §6.4 ("we need to break up the execution
    /// so that each execution segment has a tractable size of
    /// constraints. Checkpointing is a common technique used in such
    /// contexts"). Restore with [`Vm::restore`] to re-run (or record)
    /// from the captured point. Loops that snapshot repeatedly should
    /// reuse one buffer via [`Vm::snapshot_into`].
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        self.snapshot_into(&mut snap);
        snap
    }

    /// Captures the execution state into an existing [`Snapshot`],
    /// reusing its allocations. Equivalent to `*snap = self.snapshot()`
    /// without the per-capture heap traffic.
    pub fn snapshot_into(&self, snap: &mut Snapshot) {
        snap.memory.clear();
        snap.memory.extend_from_slice(self.memory.cells());
        snap.threads.clear();
        snap.frames.clear();
        snap.locals.clear();
        snap.lineages.clear();
        snap.stores.clear();
        for (i, th) in self.threads.iter().enumerate() {
            let lineage_start = snap.lineages.len() as u32;
            snap.lineages.extend_from_slice(th.lineage.components());
            let frame_start = snap.frames.len() as u32;
            for fr in &th.frames {
                let locals_start = snap.locals.len() as u32;
                snap.locals.extend_from_slice(&fr.locals);
                snap.frames.push(FrameImage {
                    func: fr.func,
                    block: fr.block,
                    ip: fr.ip as u32,
                    ret_dst: fr.ret_dst,
                    locals_start,
                    locals_len: fr.locals.len() as u32,
                });
            }
            let store_start = snap.stores.len() as u32;
            snap.stores.extend(self.buffers[i].iter().copied());
            snap.threads.push(ThreadImage {
                id: th.id,
                status: th.status,
                forks: th.forks,
                next_sap_index: th.next_sap_index,
                waiting_reacquire: th.waiting_reacquire,
                lineage_start,
                lineage_len: th.lineage.components().len() as u32,
                frame_start,
                frame_len: th.frames.len() as u32,
                store_start,
                store_len: self.buffers[i].len() as u32,
            });
        }
        snap.cond_waiters.clear();
        snap.cond_lens.clear();
        for q in &self.cond_queue {
            snap.cond_lens.push(q.len() as u32);
            snap.cond_waiters.extend(q.iter().copied());
        }
        snap.mutex_owner.clear();
        snap.mutex_owner.extend_from_slice(&self.mutex_owner);
        snap.chan_items.clear();
        snap.chan_lens.clear();
        for q in &self.chan_queues {
            snap.chan_lens.push(q.len() as u32);
            snap.chan_items.extend(q.iter().copied());
        }
        snap.chan_closed.clear();
        snap.chan_closed.extend_from_slice(&self.chan_closed);
        snap.mailbox_items.clear();
        snap.mailbox_lens.clear();
        for mb in &self.mailboxes {
            snap.mailbox_lens.push(mb.len() as u32);
            snap.mailbox_items.extend(mb.iter().copied());
        }
        snap.stats = self.stats;
        snap.announced_main = self.announced_main;
    }

    /// Restores a [`Vm::snapshot`] taken from a VM over the same program,
    /// rewriting state in place (no allocation once thread/frame/buffer
    /// capacities have warmed up). The outcome is reset so the restored
    /// VM can run again.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot's shapes do not match the program (a
    /// snapshot from a different program).
    pub fn restore(&mut self, snapshot: &Snapshot) {
        assert_eq!(
            snapshot.mutex_owner.len(),
            self.program.mutexes.len(),
            "snapshot is from a different program"
        );
        self.memory.assign(&snapshot.memory);
        self.threads.truncate(snapshot.threads.len());
        self.buffers.truncate(snapshot.threads.len());
        for (i, img) in snapshot.threads.iter().enumerate() {
            let lineage = &snapshot.lineages
                [img.lineage_start as usize..(img.lineage_start + img.lineage_len) as usize];
            let frames = &snapshot.frames
                [img.frame_start as usize..(img.frame_start + img.frame_len) as usize];
            let stores = &snapshot.stores
                [img.store_start as usize..(img.store_start + img.store_len) as usize];
            let restore_frame = |fr: &mut Frame, fi: &FrameImage| {
                fr.func = fi.func;
                fr.block = fi.block;
                fr.ip = fi.ip as usize;
                fr.ret_dst = fi.ret_dst;
                fr.locals.clear();
                fr.locals.extend_from_slice(
                    &snapshot.locals
                        [fi.locals_start as usize..(fi.locals_start + fi.locals_len) as usize],
                );
            };
            if i < self.threads.len() {
                let th = &mut self.threads[i];
                th.id = img.id;
                th.status = img.status;
                th.forks = img.forks;
                th.next_sap_index = img.next_sap_index;
                th.waiting_reacquire = img.waiting_reacquire;
                th.lineage.assign(lineage);
                th.frames.truncate(frames.len());
                for (j, fi) in frames.iter().enumerate() {
                    if j < th.frames.len() {
                        restore_frame(&mut th.frames[j], fi);
                    } else {
                        let mut fr = Frame::new(fi.func, fi.block, 0, &[]);
                        restore_frame(&mut fr, fi);
                        th.frames.push(fr);
                    }
                }
                self.buffers[i].assign(stores);
            } else {
                let mut new_frames = Vec::with_capacity(frames.len());
                for fi in frames {
                    let mut fr = Frame::new(fi.func, fi.block, 0, &[]);
                    restore_frame(&mut fr, fi);
                    new_frames.push(fr);
                }
                let mut th = Thread::new(
                    img.id,
                    Lineage::from_components(lineage),
                    Frame::new(FuncId(0), BlockId(0), 0, &[]),
                );
                th.frames = new_frames;
                th.status = img.status;
                th.forks = img.forks;
                th.next_sap_index = img.next_sap_index;
                th.waiting_reacquire = img.waiting_reacquire;
                self.threads.push(th);
                let mut buf = StoreBuffer::default();
                buf.assign(stores);
                self.buffers.push(buf);
            }
        }
        self.mutex_owner.copy_from_slice(&snapshot.mutex_owner);
        let mut start = 0usize;
        for (q, &len) in self.cond_queue.iter_mut().zip(&snapshot.cond_lens) {
            q.clear();
            q.extend(
                snapshot.cond_waiters[start..start + len as usize]
                    .iter()
                    .copied(),
            );
            start += len as usize;
        }
        let mut start = 0usize;
        for (q, &len) in self.chan_queues.iter_mut().zip(&snapshot.chan_lens) {
            q.clear();
            q.extend(
                snapshot.chan_items[start..start + len as usize]
                    .iter()
                    .copied(),
            );
            start += len as usize;
        }
        self.chan_closed.copy_from_slice(&snapshot.chan_closed);
        self.mailboxes.truncate(snapshot.mailbox_lens.len());
        self.mailboxes
            .resize_with(snapshot.mailbox_lens.len(), VecDeque::new);
        let mut start = 0usize;
        for (mb, &len) in self.mailboxes.iter_mut().zip(&snapshot.mailbox_lens) {
            mb.clear();
            mb.extend(
                snapshot.mailbox_items[start..start + len as usize]
                    .iter()
                    .copied(),
            );
            start += len as usize;
        }
        self.stats = snapshot.stats;
        self.announced_main = snapshot.announced_main;
        self.outcome = None;
        self.resync_pcs();
    }

    /// Like [`Vm::restore`], but consumes the snapshot (a one-shot
    /// hand-off such as `vm.restore_from(other.snapshot())`).
    ///
    /// # Panics
    ///
    /// Panics when the snapshot's shapes do not match the program (a
    /// snapshot from a different program).
    pub fn restore_from(&mut self, snapshot: Snapshot) {
        self.restore(&snapshot);
    }

    /// Rewinds the VM to the pristine just-constructed state in place —
    /// the per-seed reset of an exploration sweep, without the cost of
    /// restoring (or even keeping) a base snapshot.
    pub fn reset(&mut self) {
        self.memory.reinit(self.program, &self.layout);
        let main_fn = self.program.function(self.program.main);
        let entry_pc = self.compiled.func(self.program.main).entry;
        self.threads.truncate(1);
        self.buffers.truncate(1);
        let th = &mut self.threads[0];
        th.id = ThreadId::MAIN;
        th.status = Status::Runnable;
        th.forks = 0;
        th.next_sap_index = 0;
        th.waiting_reacquire = None;
        th.lineage.assign(&[0]); // Lineage::main()
        th.frames.truncate(1);
        if th.frames.is_empty() {
            th.frames.push(Frame::new(
                self.program.main,
                main_fn.entry,
                main_fn.locals.len(),
                &[],
            ));
        } else {
            let fr = &mut th.frames[0];
            fr.func = self.program.main;
            fr.block = main_fn.entry;
            fr.ip = 0;
            fr.ret_dst = None;
            fr.locals.clear();
            fr.locals.resize(main_fn.locals.len(), 0);
        }
        th.frames[0].pc = entry_pc;
        self.buffers[0].clear();
        for owner in &mut self.mutex_owner {
            *owner = None;
        }
        for q in &mut self.cond_queue {
            q.clear();
        }
        for q in &mut self.chan_queues {
            q.clear();
        }
        for closed in &mut self.chan_closed {
            *closed = false;
        }
        self.mailboxes.truncate(1);
        self.mailboxes[0].clear();
        self.stats = ExecStats {
            threads: 1,
            ..ExecStats::default()
        };
        self.outcome = None;
        self.announced_main = false;
    }

    /// Re-derives every frame's flat `pc` from its `(func, block, ip)`
    /// coordinates — restore-time sync that makes snapshots
    /// interchangeable across backends (the tree walker never maintains
    /// `pc`).
    fn resync_pcs(&mut self) {
        if self.backend != Backend::Bytecode {
            return;
        }
        for th in &mut self.threads {
            for fr in &mut th.frames {
                fr.pc = self.compiled.pc_of(fr.func, fr.block, fr.ip);
            }
        }
    }

    /// Performs one action directly — caller-driven execution for tools
    /// that need to interleave their own logic between steps (tracers,
    /// debuggers). [`Vm::run`] is the everyday loop.
    pub fn step(&mut self, action: Action, monitor: &mut dyn Monitor) {
        match action {
            Action::Step(t) => self.step_thread(t, monitor),
            Action::Drain(t, addr) => self.drain(t, addr, monitor),
        }
    }

    fn drain(&mut self, t: ThreadId, addr: Addr, monitor: &mut dyn Monitor) {
        self.stats.steps += 1;
        debug_assert!(self.buffers[t.index()]
            .drainable(self.model)
            .contains(&addr));
        if let Some(store) = self.buffers[t.index()].drain_addr(addr) {
            self.memory.write(store.addr, store.value);
            self.stats.drains += 1;
            monitor.on_commit(t, store.addr, store.value);
        }
    }

    fn flush_buffer(&mut self, t: ThreadId, monitor: &mut dyn Monitor) {
        for store in self.buffers[t.index()].flush() {
            self.memory.write(store.addr, store.value);
            self.stats.drains += 1;
            monitor.on_commit(t, store.addr, store.value);
        }
    }

    /// Commits thread `t`'s buffered stores in FIFO order up to and
    /// including the *last* pending store to `addr`, leaving younger
    /// entries to other locations buffered. The coherence fence of a
    /// relaxed/acquire RMW under C11: the RMW's own immediate write must
    /// not overtake the thread's pending stores to the same location (or
    /// any release store ordered before them).
    fn flush_buffer_through_addr(&mut self, t: ThreadId, addr: Addr, monitor: &mut dyn Monitor) {
        let ti = t.index();
        while self.buffers[ti].iter().any(|s| s.addr == addr) {
            let front = self.buffers[ti]
                .iter()
                .next()
                .map(|s| s.addr)
                .expect("buffer non-empty");
            let store = self.buffers[ti].drain_addr(front).expect("front drains");
            self.memory.write(store.addr, store.value);
            self.stats.drains += 1;
            monitor.on_commit(t, store.addr, store.value);
        }
    }

    /// Executes the flush an atomic read-modify-write implies before it
    /// reads: relaxed/acquire RMWs under C11 fence only their own
    /// location's pending stores; release/`seq_cst` RMWs — and every
    /// atomic op under SC/TSO/PSO — are full fences. This is what makes
    /// orderings observable: a relaxed CAS publishes its own write but
    /// leaves the thread's other pending stores invisible.
    fn rmw_fence(&mut self, t: ThreadId, addr: Addr, ord: AtomicOrd, monitor: &mut dyn Monitor) {
        match ord {
            AtomicOrd::Relaxed | AtomicOrd::Acquire if self.model == MemModel::C11 => {
                self.flush_buffer_through_addr(t, addr, monitor);
            }
            _ => self.flush_buffer(t, monitor),
        }
    }

    /// Executes an atomic load: `seq_cst` (and any ordering under
    /// SC/TSO/PSO) drains the thread's own buffer first, then the value is
    /// the thread's newest pending store to the location, falling back to
    /// globally-visible memory. Returns the loaded value; the caller
    /// advances the frame.
    fn exec_atomic_load(
        &mut self,
        t: ThreadId,
        global: GlobalId,
        ord: AtomicOrd,
        monitor: &mut dyn Monitor,
    ) -> i64 {
        let addr = self.atomic_addr(global);
        if self.model != MemModel::C11 || ord == AtomicOrd::SeqCst {
            self.flush_buffer(t, monitor);
        }
        let value = self.buffers[t.index()]
            .forward(addr)
            .unwrap_or_else(|| self.memory.read(addr));
        self.take_sap(t);
        monitor.on_access(
            t,
            &AccessEvent {
                global,
                offset: 0,
                addr,
                is_write: false,
                value,
            },
        );
        value
    }

    /// Executes an atomic store: relaxed/acquire/release under C11 enter
    /// the store buffer (visible at a scheduled drain; release entries are
    /// gated behind the thread's earlier stores); `seq_cst` — and every
    /// ordering under SC/TSO/PSO — flushes and writes immediately.
    fn exec_atomic_store(
        &mut self,
        t: ThreadId,
        global: GlobalId,
        value: i64,
        ord: AtomicOrd,
        monitor: &mut dyn Monitor,
    ) {
        let addr = self.atomic_addr(global);
        let po_index = self.take_sap(t);
        if self.atomic_store_buffered(ord) {
            self.buffers[t.index()].push(BufferedStore {
                addr,
                value,
                po_index,
                release: ord == AtomicOrd::Release,
            });
        } else {
            self.flush_buffer(t, monitor);
            self.memory.write(addr, value);
            monitor.on_commit(t, addr, value);
        }
        monitor.on_access(
            t,
            &AccessEvent {
                global,
                offset: 0,
                addr,
                is_write: true,
                value,
            },
        );
    }

    /// Executes `fetch_add`: fence per `ord`, read the visible value, write
    /// the sum immediately (RMWs are never buffered — atomicity), return
    /// the old value.
    fn exec_atomic_rmw(
        &mut self,
        t: ThreadId,
        global: GlobalId,
        delta: i64,
        ord: AtomicOrd,
        monitor: &mut dyn Monitor,
    ) -> i64 {
        let addr = self.atomic_addr(global);
        self.rmw_fence(t, addr, ord, monitor);
        let old = self.memory.read(addr);
        let new = old.wrapping_add(delta);
        self.memory.write(addr, new);
        self.take_sap(t);
        monitor.on_commit(t, addr, new);
        monitor.on_access(
            t,
            &AccessEvent {
                global,
                offset: 0,
                addr,
                is_write: true,
                value: new,
            },
        );
        old
    }

    /// Executes `cas`: fence per `ord`, read the visible value, write
    /// `desired` iff it equals `expected`, return the old value. Both CAS
    /// outcomes are reachable — which one occurs is decided by how the
    /// scheduler ordered other threads' drains before this step.
    fn exec_atomic_cas(
        &mut self,
        t: ThreadId,
        global: GlobalId,
        expected: i64,
        desired: i64,
        ord: AtomicOrd,
        monitor: &mut dyn Monitor,
    ) -> i64 {
        let addr = self.atomic_addr(global);
        self.rmw_fence(t, addr, ord, monitor);
        let old = self.memory.read(addr);
        self.take_sap(t);
        if old == expected {
            self.memory.write(addr, desired);
            monitor.on_commit(t, addr, desired);
            monitor.on_access(
                t,
                &AccessEvent {
                    global,
                    offset: 0,
                    addr,
                    is_write: true,
                    value: desired,
                },
            );
        } else {
            monitor.on_access(
                t,
                &AccessEvent {
                    global,
                    offset: 0,
                    addr,
                    is_write: false,
                    value: old,
                },
            );
        }
        old
    }

    fn fault(&mut self, t: ThreadId, message: impl Into<String>) {
        self.outcome = Some(Outcome::Fault {
            thread: t,
            message: message.into(),
        });
    }

    fn take_sap(&mut self, t: ThreadId) -> u64 {
        let thread = &mut self.threads[t.index()];
        let i = thread.next_sap_index;
        thread.next_sap_index += 1;
        self.stats.saps += 1;
        i
    }

    fn wake_lock_waiters(&mut self, mutex: MutexId) {
        for th in &mut self.threads {
            if th.status == Status::BlockedLock(mutex) {
                th.status = Status::Runnable;
            }
        }
    }

    /// Wakes every thread parked on a `send` to `chan` — called whenever a
    /// slot may have freed (a receive, a close) or, for capacity-0
    /// channels, when a receiver parks at the rendezvous point. Woken
    /// senders recontend: a thread that still cannot send re-parks on its
    /// next step.
    fn wake_chan_senders(&mut self, chan: ChanId) {
        for th in &mut self.threads {
            if th.status == Status::BlockedSend(chan) {
                th.status = Status::Runnable;
            }
        }
    }

    /// Wakes every thread parked on a `recv` from `chan` — called when a
    /// value arrives or the channel closes.
    fn wake_chan_receivers(&mut self, chan: ChanId) {
        for th in &mut self.threads {
            if th.status == Status::BlockedRecv(chan) {
                th.status = Status::Runnable;
            }
        }
    }

    fn step_thread(&mut self, t: ThreadId, monitor: &mut dyn Monitor) {
        match self.backend {
            Backend::Bytecode => self.step_thread_bc(t, monitor),
            Backend::Tree => self.step_thread_tree(t, monitor),
        }
    }

    /// The bytecode inner loop: one `Copy` op fetched by absolute address,
    /// no block lookup, no terminator clone. Must mirror
    /// [`Vm::step_thread_tree`] effect-for-effect — stats increments,
    /// monitor callbacks and their order, blocking behavior — so the two
    /// backends stay schedule-equivalent.
    fn step_thread_bc(&mut self, t: ThreadId, monitor: &mut dyn Monitor) {
        self.stats.steps += 1;
        let ti = t.index();
        let pc = self.threads[ti].frame().pc;
        match self.compiled.code[pc as usize] {
            Op::Assign { dst, rv } => {
                let frame = self.threads[ti].frame_mut();
                let value = match rv {
                    Rv::Use(op) => operand(frame, op),
                    Rv::Unary(op, a) => eval_unop(op, operand(frame, a)),
                    Rv::Binary(op, a, b) => eval_binop(op, operand(frame, a), operand(frame, b)),
                };
                frame.locals[dst.index()] = value;
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
            }
            Op::Load { dst, global, index } => {
                let frame = self.threads[ti].frame();
                let offset = index.map(|op| operand(frame, op)).unwrap_or(0);
                let Some(addr) = self.layout.addr(global, offset) else {
                    let name = &self.program.globals[global.index()].name;
                    self.fault(t, format!("load out of bounds: {name}[{offset}]"));
                    return;
                };
                let shared = self.is_shared(global);
                let value = if shared && self.model.buffered() {
                    self.buffers[ti]
                        .forward(addr)
                        .unwrap_or_else(|| self.memory.read(addr))
                } else {
                    self.memory.read(addr)
                };
                let frame = self.threads[ti].frame_mut();
                frame.locals[dst.index()] = value;
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
                if shared {
                    self.take_sap(t);
                    monitor.on_access(
                        t,
                        &AccessEvent {
                            global,
                            offset: offset as usize,
                            addr,
                            is_write: false,
                            value,
                        },
                    );
                }
            }
            Op::Store { global, index, src } => {
                let frame = self.threads[ti].frame();
                let offset = index.map(|op| operand(frame, op)).unwrap_or(0);
                let value = operand(frame, src);
                let Some(addr) = self.layout.addr(global, offset) else {
                    let name = &self.program.globals[global.index()].name;
                    self.fault(t, format!("store out of bounds: {name}[{offset}]"));
                    return;
                };
                let shared = self.is_shared(global);
                let frame = self.threads[ti].frame_mut();
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
                if shared {
                    let po_index = self.take_sap(t);
                    if self.model.buffered() {
                        self.buffers[ti].push(BufferedStore {
                            addr,
                            value,
                            po_index,
                            release: false,
                        });
                    } else {
                        self.memory.write(addr, value);
                        monitor.on_commit(t, addr, value);
                    }
                    monitor.on_access(
                        t,
                        &AccessEvent {
                            global,
                            offset: offset as usize,
                            addr,
                            is_write: true,
                            value,
                        },
                    );
                } else {
                    self.memory.write(addr, value);
                }
            }
            Op::Lock(m) => {
                if self.mutex_owner[m.index()].is_none() {
                    self.flush_buffer(t, monitor);
                    self.mutex_owner[m.index()] = Some(t);
                    let frame = self.threads[ti].frame_mut();
                    frame.ip += 1;
                    frame.pc += 1;
                    self.stats.instructions += 1;
                    self.take_sap(t);
                    monitor.on_sync(t, &SyncEvent::Lock(m));
                } else {
                    self.threads[ti].status = Status::BlockedLock(m);
                }
            }
            Op::Unlock(m) => {
                if self.mutex_owner[m.index()] != Some(t) {
                    let name = &self.program.mutexes[m.index()];
                    self.fault(t, format!("unlock of mutex `{name}` not held by {t}"));
                    return;
                }
                self.flush_buffer(t, monitor);
                self.mutex_owner[m.index()] = None;
                self.wake_lock_waiters(m);
                let frame = self.threads[ti].frame_mut();
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::Unlock(m));
            }
            Op::Fork {
                dst,
                func: callee,
                args,
            } => {
                let argv: Vec<i64> = {
                    let frame = self.threads[ti].frame();
                    self.compiled
                        .args(args)
                        .iter()
                        .map(|a| operand(frame, *a))
                        .collect()
                };
                self.flush_buffer(t, monitor);
                let parent = &mut self.threads[ti];
                parent.forks += 1;
                let lineage = parent.lineage.child(parent.forks);
                let child = ThreadId::from(self.threads.len());
                let meta = self.compiled.func(callee);
                let entry_block = self.compiled.info(meta.entry).block;
                let mut child_frame = Frame::new(callee, entry_block, meta.locals as usize, &argv);
                child_frame.pc = meta.entry;
                self.threads
                    .push(Thread::new(child, lineage.clone(), child_frame));
                self.buffers.push(StoreBuffer::default());
                self.mailboxes.push(VecDeque::new());
                self.stats.threads += 1;
                let frame = self.threads[ti].frame_mut();
                frame.locals[dst.index()] = child.0 as i64;
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::Fork(child));
                monitor.on_thread_start(child, &lineage, callee);
                monitor.on_func_enter(child, callee);
            }
            Op::Join { handle } => {
                let target = operand(self.threads[ti].frame(), handle);
                if target < 0 || target as usize >= self.threads.len() {
                    self.fault(t, format!("join of invalid thread handle {target}"));
                    return;
                }
                let target = ThreadId::from(target as usize);
                if self.threads[target.index()].status == Status::Exited {
                    self.flush_buffer(t, monitor);
                    let frame = self.threads[ti].frame_mut();
                    frame.ip += 1;
                    frame.pc += 1;
                    self.stats.instructions += 1;
                    self.take_sap(t);
                    monitor.on_sync(t, &SyncEvent::Join(target));
                } else {
                    self.threads[ti].status = Status::BlockedJoin(target);
                }
            }
            Op::Wait { cond, mutex } => {
                if let Some(m) = self.threads[ti].waiting_reacquire {
                    // Phase 2: reacquire the mutex, complete the wait.
                    if self.mutex_owner[m.index()].is_none() {
                        self.mutex_owner[m.index()] = Some(t);
                        let thread = &mut self.threads[ti];
                        thread.waiting_reacquire = None;
                        let frame = thread.frame_mut();
                        frame.ip += 1;
                        frame.pc += 1;
                        self.stats.instructions += 1;
                        self.take_sap(t);
                        monitor.on_sync(t, &SyncEvent::Wait(cond, m));
                    } else {
                        self.threads[ti].status = Status::BlockedLock(m);
                    }
                } else {
                    // Phase 1: release the mutex and park.
                    if self.mutex_owner[mutex.index()] != Some(t) {
                        let name = &self.program.mutexes[mutex.index()];
                        self.fault(t, format!("wait without holding mutex `{name}`"));
                        return;
                    }
                    self.flush_buffer(t, monitor);
                    self.mutex_owner[mutex.index()] = None;
                    self.wake_lock_waiters(mutex);
                    let thread = &mut self.threads[ti];
                    thread.status = Status::BlockedWait(cond);
                    thread.waiting_reacquire = Some(mutex);
                    self.cond_queue[cond.index()].push_back(t);
                    self.stats.instructions += 1;
                    self.take_sap(t);
                    monitor.on_sync(t, &SyncEvent::Unlock(mutex));
                }
            }
            Op::Signal(c) => {
                if let Some(waiter) = self.cond_queue[c.index()].pop_front() {
                    self.threads[waiter.index()].status = Status::Runnable;
                }
                let frame = self.threads[ti].frame_mut();
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::Signal(c));
            }
            Op::Broadcast(c) => {
                while let Some(waiter) = self.cond_queue[c.index()].pop_front() {
                    self.threads[waiter.index()].status = Status::Runnable;
                }
                let frame = self.threads[ti].frame_mut();
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::Broadcast(c));
            }
            Op::Send { chan, src } => {
                if !self.chan_send_ready(t, chan) {
                    self.threads[ti].status = Status::BlockedSend(chan);
                    return;
                }
                let value = operand(self.threads[ti].frame(), src);
                self.flush_buffer(t, monitor);
                if !self.chan_closed[chan.index()] {
                    self.chan_queues[chan.index()].push_back(value);
                    self.wake_chan_receivers(chan);
                }
                // Closed channel: the value is silently dropped — the
                // "lost close" failure mode the asserts observe.
                let frame = self.threads[ti].frame_mut();
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::ChanSend(chan));
            }
            Op::Recv { dst, chan } => {
                if !self.chan_recv_ready(chan) {
                    self.threads[ti].status = Status::BlockedRecv(chan);
                    // A parked receiver is a rendezvous partner: let
                    // capacity-0 senders recontend.
                    self.wake_chan_senders(chan);
                    return;
                }
                self.flush_buffer(t, monitor);
                let value = match self.chan_queues[chan.index()].pop_front() {
                    Some(v) => {
                        self.wake_chan_senders(chan);
                        v
                    }
                    None => -1, // closed and drained
                };
                let frame = self.threads[ti].frame_mut();
                frame.locals[dst.index()] = value;
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::ChanRecv(chan));
            }
            Op::TrySend { dst, chan, src } => {
                let value = operand(self.threads[ti].frame(), src);
                self.flush_buffer(t, monitor);
                let ok = if self.chan_closed[chan.index()] {
                    false
                } else {
                    let cap = self.program.chans[chan.index()].cap;
                    let ready = if cap == 0 {
                        self.chan_queues[chan.index()].is_empty() && self.recv_positioned(t, chan)
                    } else {
                        self.chan_queues[chan.index()].len() < cap
                    };
                    if ready {
                        self.chan_queues[chan.index()].push_back(value);
                        self.wake_chan_receivers(chan);
                    }
                    ready
                };
                let frame = self.threads[ti].frame_mut();
                frame.locals[dst.index()] = ok as i64;
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::ChanTrySend(chan, ok));
            }
            Op::TryRecv { dst, chan } => {
                self.flush_buffer(t, monitor);
                let (value, ok) = match self.chan_queues[chan.index()].pop_front() {
                    Some(v) => {
                        self.wake_chan_senders(chan);
                        (v, true)
                    }
                    None => (-1, false),
                };
                let frame = self.threads[ti].frame_mut();
                frame.locals[dst.index()] = value;
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::ChanTryRecv(chan, ok));
            }
            Op::ChanClose(c) => {
                self.flush_buffer(t, monitor);
                self.chan_closed[c.index()] = true; // double-close is a no-op
                self.wake_chan_senders(c);
                self.wake_chan_receivers(c);
                let frame = self.threads[ti].frame_mut();
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::ChanClose(c));
            }
            Op::SpawnActor {
                dst,
                func: callee,
                args,
            } => {
                let argv: Vec<i64> = {
                    let frame = self.threads[ti].frame();
                    self.compiled
                        .args(args)
                        .iter()
                        .map(|a| operand(frame, *a))
                        .collect()
                };
                self.flush_buffer(t, monitor);
                let parent = &mut self.threads[ti];
                parent.forks += 1;
                let lineage = parent.lineage.child(parent.forks);
                let child = ThreadId::from(self.threads.len());
                let meta = self.compiled.func(callee);
                let entry_block = self.compiled.info(meta.entry).block;
                let mut child_frame = Frame::new(callee, entry_block, meta.locals as usize, &argv);
                child_frame.pc = meta.entry;
                self.threads
                    .push(Thread::new(child, lineage.clone(), child_frame));
                self.buffers.push(StoreBuffer::default());
                self.mailboxes.push(VecDeque::new());
                self.stats.threads += 1;
                let frame = self.threads[ti].frame_mut();
                frame.locals[dst.index()] = child.0 as i64;
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::SpawnActor(child));
                monitor.on_thread_start(child, &lineage, callee);
                monitor.on_func_enter(child, callee);
            }
            Op::MailboxSend { target, src } => {
                let frame = self.threads[ti].frame();
                let handle = operand(frame, target);
                let value = operand(frame, src);
                if handle < 0 || handle as usize >= self.threads.len() {
                    self.fault(t, format!("mailbox_send to invalid thread handle {handle}"));
                    return;
                }
                let target = ThreadId::from(handle as usize);
                self.flush_buffer(t, monitor);
                if self.threads[target.index()].status != Status::Exited {
                    self.mailboxes[target.index()].push_back(value);
                    if self.threads[target.index()].status == Status::BlockedMailbox {
                        self.threads[target.index()].status = Status::Runnable;
                    }
                }
                // Dead letter: a message to an exited thread is dropped.
                let frame = self.threads[ti].frame_mut();
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::MailboxSend(target));
            }
            Op::MailboxRecv { dst } => {
                if self.mailboxes[ti].is_empty() {
                    self.threads[ti].status = Status::BlockedMailbox;
                    return;
                }
                self.flush_buffer(t, monitor);
                let value = self.mailboxes[ti].pop_front().expect("mailbox non-empty");
                let frame = self.threads[ti].frame_mut();
                frame.locals[dst.index()] = value;
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::MailboxRecv);
            }
            Op::AtomicLoad { dst, global, ord } => {
                let value = self.exec_atomic_load(t, global, ord, monitor);
                let frame = self.threads[ti].frame_mut();
                frame.locals[dst.index()] = value;
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
            }
            Op::AtomicStore { global, src, ord } => {
                let value = operand(self.threads[ti].frame(), src);
                self.exec_atomic_store(t, global, value, ord, monitor);
                let frame = self.threads[ti].frame_mut();
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
            }
            Op::AtomicRmw {
                dst,
                global,
                src,
                ord,
            } => {
                let delta = operand(self.threads[ti].frame(), src);
                let old = self.exec_atomic_rmw(t, global, delta, ord, monitor);
                let frame = self.threads[ti].frame_mut();
                frame.locals[dst.index()] = old;
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
            }
            Op::AtomicCas {
                dst,
                global,
                expected,
                desired,
                ord,
            } => {
                let (expected, desired) = {
                    let frame = self.threads[ti].frame();
                    (operand(frame, expected), operand(frame, desired))
                };
                let old = self.exec_atomic_cas(t, global, expected, desired, ord, monitor);
                let frame = self.threads[ti].frame_mut();
                frame.locals[dst.index()] = old;
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
            }
            Op::Yield => {
                let frame = self.threads[ti].frame_mut();
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
            }
            Op::Assert { cond, id } => {
                let passed = operand(self.threads[ti].frame(), cond) != 0;
                monitor.on_assert(t, id, passed);
                self.stats.instructions += 1;
                if passed {
                    let frame = self.threads[ti].frame_mut();
                    frame.ip += 1;
                    frame.pc += 1;
                } else {
                    self.outcome = Some(Outcome::AssertFailed {
                        assert: id,
                        thread: t,
                    });
                }
            }
            Op::Call {
                dst,
                func: callee,
                args,
            } => {
                let argv: Vec<i64> = {
                    let frame = self.threads[ti].frame();
                    self.compiled
                        .args(args)
                        .iter()
                        .map(|a| operand(frame, *a))
                        .collect()
                };
                let frame = self.threads[ti].frame_mut();
                frame.ip += 1;
                frame.pc += 1;
                self.stats.instructions += 1;
                let meta = self.compiled.func(callee);
                let entry_block = self.compiled.info(meta.entry).block;
                let mut new_frame = Frame::new(callee, entry_block, meta.locals as usize, &argv);
                new_frame.pc = meta.entry;
                new_frame.ret_dst = dst;
                self.threads[ti].frames.push(new_frame);
                monitor.on_func_enter(t, callee);
            }
            Op::Jump { target } => {
                let to = self.compiled.info[target as usize].block;
                let frame = self.threads[ti].frame_mut();
                let func = frame.func;
                let from = frame.block;
                frame.block = to;
                frame.ip = 0;
                frame.pc = target;
                monitor.on_edge(t, func, from, to);
            }
            Op::Branch {
                cond,
                then_pc,
                else_pc,
            } => {
                let target = if operand(self.threads[ti].frame(), cond) != 0 {
                    then_pc
                } else {
                    else_pc
                };
                let to = self.compiled.info[target as usize].block;
                let frame = self.threads[ti].frame_mut();
                let func = frame.func;
                let from = frame.block;
                frame.block = to;
                frame.ip = 0;
                frame.pc = target;
                self.stats.branches += 1;
                monitor.on_edge(t, func, from, to);
            }
            Op::Return { value } => {
                let ret = value.map(|op| operand(self.threads[ti].frame(), op));
                let popped = self.threads[ti].frames.pop().expect("frame exists");
                monitor.on_func_exit(t, popped.func);
                if self.threads[ti].frames.is_empty() {
                    // Thread exit: flush buffered stores, wake joiners.
                    self.flush_buffer(t, monitor);
                    self.threads[ti].status = Status::Exited;
                    for th in &mut self.threads {
                        if th.status == Status::BlockedJoin(t) {
                            th.status = Status::Runnable;
                        }
                    }
                    monitor.on_thread_exit(t);
                } else if let (Some(dst), Some(v)) = (popped.ret_dst, ret) {
                    self.threads[ti].frame_mut().locals[dst.index()] = v;
                }
            }
        }
    }

    fn step_thread_tree(&mut self, t: ThreadId, monitor: &mut dyn Monitor) {
        self.stats.steps += 1;
        let program = self.program;
        let (func_id, block_id, ip) = {
            let frame = self.threads[t.index()].frame();
            (frame.func, frame.block, frame.ip)
        };
        let func = program.function(func_id);
        let block = func.block(block_id);
        if ip >= block.instrs.len() {
            self.exec_terminator(t, func_id, monitor);
            return;
        }
        let instr = &block.instrs[ip];
        match instr {
            Instr::Assign { dst, rv } => {
                let frame = self.threads[t.index()].frame_mut();
                let value = match rv {
                    Rvalue::Use(op) => operand(frame, *op),
                    Rvalue::Unary(op, a) => eval_unop(*op, operand(frame, *a)),
                    Rvalue::Binary(op, a, b) => {
                        eval_binop(*op, operand(frame, *a), operand(frame, *b))
                    }
                };
                frame.locals[dst.index()] = value;
                frame.ip += 1;
                self.stats.instructions += 1;
            }
            Instr::Load { dst, global, index } => {
                let frame = self.threads[t.index()].frame();
                let offset = index.map(|op| operand(frame, op)).unwrap_or(0);
                let Some(addr) = self.layout.addr(*global, offset) else {
                    let name = &program.globals[global.index()].name;
                    self.fault(t, format!("load out of bounds: {name}[{offset}]"));
                    return;
                };
                let shared = self.is_shared(*global);
                let value = if shared && self.model.buffered() {
                    self.buffers[t.index()]
                        .forward(addr)
                        .unwrap_or_else(|| self.memory.read(addr))
                } else {
                    self.memory.read(addr)
                };
                let frame = self.threads[t.index()].frame_mut();
                frame.locals[dst.index()] = value;
                frame.ip += 1;
                self.stats.instructions += 1;
                if shared {
                    self.take_sap(t);
                    monitor.on_access(
                        t,
                        &AccessEvent {
                            global: *global,
                            offset: offset as usize,
                            addr,
                            is_write: false,
                            value,
                        },
                    );
                }
            }
            Instr::Store { global, index, src } => {
                let frame = self.threads[t.index()].frame();
                let offset = index.map(|op| operand(frame, op)).unwrap_or(0);
                let value = operand(frame, *src);
                let Some(addr) = self.layout.addr(*global, offset) else {
                    let name = &program.globals[global.index()].name;
                    self.fault(t, format!("store out of bounds: {name}[{offset}]"));
                    return;
                };
                let shared = self.is_shared(*global);
                self.threads[t.index()].frame_mut().ip += 1;
                self.stats.instructions += 1;
                if shared {
                    let po_index = self.take_sap(t);
                    if self.model.buffered() {
                        self.buffers[t.index()].push(BufferedStore {
                            addr,
                            value,
                            po_index,
                            release: false,
                        });
                    } else {
                        self.memory.write(addr, value);
                        monitor.on_commit(t, addr, value);
                    }
                    monitor.on_access(
                        t,
                        &AccessEvent {
                            global: *global,
                            offset: offset as usize,
                            addr,
                            is_write: true,
                            value,
                        },
                    );
                } else {
                    self.memory.write(addr, value);
                }
            }
            Instr::Lock(m) => {
                if self.mutex_owner[m.index()].is_none() {
                    self.flush_buffer(t, monitor);
                    self.mutex_owner[m.index()] = Some(t);
                    self.threads[t.index()].frame_mut().ip += 1;
                    self.stats.instructions += 1;
                    self.take_sap(t);
                    monitor.on_sync(t, &SyncEvent::Lock(*m));
                } else {
                    self.threads[t.index()].status = Status::BlockedLock(*m);
                }
            }
            Instr::Unlock(m) => {
                if self.mutex_owner[m.index()] != Some(t) {
                    let name = &program.mutexes[m.index()];
                    self.fault(t, format!("unlock of mutex `{name}` not held by {t}"));
                    return;
                }
                self.flush_buffer(t, monitor);
                self.mutex_owner[m.index()] = None;
                self.wake_lock_waiters(*m);
                self.threads[t.index()].frame_mut().ip += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::Unlock(*m));
            }
            Instr::Fork {
                dst,
                func: callee,
                args,
            } => {
                let frame = self.threads[t.index()].frame();
                let argv: Vec<i64> = args.iter().map(|a| operand(frame, *a)).collect();
                self.flush_buffer(t, monitor);
                let parent = &mut self.threads[t.index()];
                parent.forks += 1;
                let lineage = parent.lineage.child(parent.forks);
                let child = ThreadId::from(self.threads.len());
                let callee_fn = program.function(*callee);
                let child_frame =
                    Frame::new(*callee, callee_fn.entry, callee_fn.locals.len(), &argv);
                self.threads
                    .push(Thread::new(child, lineage.clone(), child_frame));
                self.buffers.push(StoreBuffer::default());
                self.mailboxes.push(VecDeque::new());
                self.stats.threads += 1;
                let frame = self.threads[t.index()].frame_mut();
                frame.locals[dst.index()] = child.0 as i64;
                frame.ip += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::Fork(child));
                monitor.on_thread_start(child, &lineage, *callee);
                monitor.on_func_enter(child, *callee);
            }
            Instr::Join { handle } => {
                let frame = self.threads[t.index()].frame();
                let target = operand(frame, *handle);
                if target < 0 || target as usize >= self.threads.len() {
                    self.fault(t, format!("join of invalid thread handle {target}"));
                    return;
                }
                let target = ThreadId::from(target as usize);
                if self.threads[target.index()].status == Status::Exited {
                    self.flush_buffer(t, monitor);
                    self.threads[t.index()].frame_mut().ip += 1;
                    self.stats.instructions += 1;
                    self.take_sap(t);
                    monitor.on_sync(t, &SyncEvent::Join(target));
                } else {
                    self.threads[t.index()].status = Status::BlockedJoin(target);
                }
            }
            Instr::Wait { cond, mutex } => {
                if let Some(m) = self.threads[t.index()].waiting_reacquire {
                    // Phase 2: reacquire the mutex, complete the wait.
                    if self.mutex_owner[m.index()].is_none() {
                        self.mutex_owner[m.index()] = Some(t);
                        let thread = &mut self.threads[t.index()];
                        thread.waiting_reacquire = None;
                        thread.frame_mut().ip += 1;
                        self.stats.instructions += 1;
                        self.take_sap(t);
                        monitor.on_sync(t, &SyncEvent::Wait(*cond, m));
                    } else {
                        self.threads[t.index()].status = Status::BlockedLock(m);
                    }
                } else {
                    // Phase 1: release the mutex and park.
                    if self.mutex_owner[mutex.index()] != Some(t) {
                        let name = &program.mutexes[mutex.index()];
                        self.fault(t, format!("wait without holding mutex `{name}`"));
                        return;
                    }
                    self.flush_buffer(t, monitor);
                    self.mutex_owner[mutex.index()] = None;
                    self.wake_lock_waiters(*mutex);
                    let thread = &mut self.threads[t.index()];
                    thread.status = Status::BlockedWait(*cond);
                    thread.waiting_reacquire = Some(*mutex);
                    self.cond_queue[cond.index()].push_back(t);
                    self.stats.instructions += 1;
                    self.take_sap(t);
                    monitor.on_sync(t, &SyncEvent::Unlock(*mutex));
                }
            }
            Instr::Signal(c) => {
                if let Some(waiter) = self.cond_queue[c.index()].pop_front() {
                    self.threads[waiter.index()].status = Status::Runnable;
                }
                self.threads[t.index()].frame_mut().ip += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::Signal(*c));
            }
            Instr::Broadcast(c) => {
                while let Some(waiter) = self.cond_queue[c.index()].pop_front() {
                    self.threads[waiter.index()].status = Status::Runnable;
                }
                self.threads[t.index()].frame_mut().ip += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::Broadcast(*c));
            }
            Instr::Send { chan, src } => {
                let chan = *chan;
                if !self.chan_send_ready(t, chan) {
                    self.threads[t.index()].status = Status::BlockedSend(chan);
                    return;
                }
                let value = operand(self.threads[t.index()].frame(), *src);
                self.flush_buffer(t, monitor);
                if !self.chan_closed[chan.index()] {
                    self.chan_queues[chan.index()].push_back(value);
                    self.wake_chan_receivers(chan);
                }
                // Closed channel: the value is silently dropped — the
                // "lost close" failure mode the asserts observe.
                self.threads[t.index()].frame_mut().ip += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::ChanSend(chan));
            }
            Instr::Recv { dst, chan } => {
                let chan = *chan;
                if !self.chan_recv_ready(chan) {
                    self.threads[t.index()].status = Status::BlockedRecv(chan);
                    // A parked receiver is a rendezvous partner: let
                    // capacity-0 senders recontend.
                    self.wake_chan_senders(chan);
                    return;
                }
                self.flush_buffer(t, monitor);
                let value = match self.chan_queues[chan.index()].pop_front() {
                    Some(v) => {
                        self.wake_chan_senders(chan);
                        v
                    }
                    None => -1, // closed and drained
                };
                let frame = self.threads[t.index()].frame_mut();
                frame.locals[dst.index()] = value;
                frame.ip += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::ChanRecv(chan));
            }
            Instr::TrySend { dst, chan, src } => {
                let chan = *chan;
                let value = operand(self.threads[t.index()].frame(), *src);
                self.flush_buffer(t, monitor);
                let ok = if self.chan_closed[chan.index()] {
                    false
                } else {
                    let cap = self.program.chans[chan.index()].cap;
                    let ready = if cap == 0 {
                        self.chan_queues[chan.index()].is_empty() && self.recv_positioned(t, chan)
                    } else {
                        self.chan_queues[chan.index()].len() < cap
                    };
                    if ready {
                        self.chan_queues[chan.index()].push_back(value);
                        self.wake_chan_receivers(chan);
                    }
                    ready
                };
                let frame = self.threads[t.index()].frame_mut();
                frame.locals[dst.index()] = ok as i64;
                frame.ip += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::ChanTrySend(chan, ok));
            }
            Instr::TryRecv { dst, chan } => {
                let chan = *chan;
                self.flush_buffer(t, monitor);
                let (value, ok) = match self.chan_queues[chan.index()].pop_front() {
                    Some(v) => {
                        self.wake_chan_senders(chan);
                        (v, true)
                    }
                    None => (-1, false),
                };
                let frame = self.threads[t.index()].frame_mut();
                frame.locals[dst.index()] = value;
                frame.ip += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::ChanTryRecv(chan, ok));
            }
            Instr::ChanClose(c) => {
                let c = *c;
                self.flush_buffer(t, monitor);
                self.chan_closed[c.index()] = true; // double-close is a no-op
                self.wake_chan_senders(c);
                self.wake_chan_receivers(c);
                self.threads[t.index()].frame_mut().ip += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::ChanClose(c));
            }
            Instr::SpawnActor {
                dst,
                func: callee,
                args,
            } => {
                let frame = self.threads[t.index()].frame();
                let argv: Vec<i64> = args.iter().map(|a| operand(frame, *a)).collect();
                self.flush_buffer(t, monitor);
                let parent = &mut self.threads[t.index()];
                parent.forks += 1;
                let lineage = parent.lineage.child(parent.forks);
                let child = ThreadId::from(self.threads.len());
                let callee_fn = program.function(*callee);
                let child_frame =
                    Frame::new(*callee, callee_fn.entry, callee_fn.locals.len(), &argv);
                self.threads
                    .push(Thread::new(child, lineage.clone(), child_frame));
                self.buffers.push(StoreBuffer::default());
                self.mailboxes.push(VecDeque::new());
                self.stats.threads += 1;
                let frame = self.threads[t.index()].frame_mut();
                frame.locals[dst.index()] = child.0 as i64;
                frame.ip += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::SpawnActor(child));
                monitor.on_thread_start(child, &lineage, *callee);
                monitor.on_func_enter(child, *callee);
            }
            Instr::MailboxSend { target, src } => {
                let frame = self.threads[t.index()].frame();
                let handle = operand(frame, *target);
                let value = operand(frame, *src);
                if handle < 0 || handle as usize >= self.threads.len() {
                    self.fault(t, format!("mailbox_send to invalid thread handle {handle}"));
                    return;
                }
                let target = ThreadId::from(handle as usize);
                self.flush_buffer(t, monitor);
                if self.threads[target.index()].status != Status::Exited {
                    self.mailboxes[target.index()].push_back(value);
                    if self.threads[target.index()].status == Status::BlockedMailbox {
                        self.threads[target.index()].status = Status::Runnable;
                    }
                }
                // Dead letter: a message to an exited thread is dropped.
                self.threads[t.index()].frame_mut().ip += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::MailboxSend(target));
            }
            Instr::MailboxRecv { dst } => {
                if self.mailboxes[t.index()].is_empty() {
                    self.threads[t.index()].status = Status::BlockedMailbox;
                    return;
                }
                self.flush_buffer(t, monitor);
                let value = self.mailboxes[t.index()]
                    .pop_front()
                    .expect("mailbox non-empty");
                let frame = self.threads[t.index()].frame_mut();
                frame.locals[dst.index()] = value;
                frame.ip += 1;
                self.stats.instructions += 1;
                self.take_sap(t);
                monitor.on_sync(t, &SyncEvent::MailboxRecv);
            }
            Instr::AtomicLoad { dst, global, ord } => {
                let value = self.exec_atomic_load(t, *global, *ord, monitor);
                let frame = self.threads[t.index()].frame_mut();
                frame.locals[dst.index()] = value;
                frame.ip += 1;
                self.stats.instructions += 1;
            }
            Instr::AtomicStore { global, src, ord } => {
                let value = operand(self.threads[t.index()].frame(), *src);
                self.exec_atomic_store(t, *global, value, *ord, monitor);
                self.threads[t.index()].frame_mut().ip += 1;
                self.stats.instructions += 1;
            }
            Instr::AtomicRmw {
                dst,
                global,
                src,
                ord,
            } => {
                let delta = operand(self.threads[t.index()].frame(), *src);
                let old = self.exec_atomic_rmw(t, *global, delta, *ord, monitor);
                let frame = self.threads[t.index()].frame_mut();
                frame.locals[dst.index()] = old;
                frame.ip += 1;
                self.stats.instructions += 1;
            }
            Instr::AtomicCas {
                dst,
                global,
                expected,
                desired,
                ord,
            } => {
                let (expected, desired) = {
                    let frame = self.threads[t.index()].frame();
                    (operand(frame, *expected), operand(frame, *desired))
                };
                let old = self.exec_atomic_cas(t, *global, expected, desired, *ord, monitor);
                let frame = self.threads[t.index()].frame_mut();
                frame.locals[dst.index()] = old;
                frame.ip += 1;
                self.stats.instructions += 1;
            }
            Instr::Yield => {
                self.threads[t.index()].frame_mut().ip += 1;
                self.stats.instructions += 1;
            }
            Instr::Assert { cond, id } => {
                let frame = self.threads[t.index()].frame();
                let passed = operand(frame, *cond) != 0;
                monitor.on_assert(t, *id, passed);
                self.stats.instructions += 1;
                if passed {
                    self.threads[t.index()].frame_mut().ip += 1;
                } else {
                    self.outcome = Some(Outcome::AssertFailed {
                        assert: *id,
                        thread: t,
                    });
                }
            }
            Instr::Call {
                dst,
                func: callee,
                args,
            } => {
                let frame = self.threads[t.index()].frame();
                let argv: Vec<i64> = args.iter().map(|a| operand(frame, *a)).collect();
                let callee_fn = program.function(*callee);
                self.threads[t.index()].frame_mut().ip += 1;
                self.stats.instructions += 1;
                let mut new_frame =
                    Frame::new(*callee, callee_fn.entry, callee_fn.locals.len(), &argv);
                new_frame.ret_dst = *dst;
                self.threads[t.index()].frames.push(new_frame);
                monitor.on_func_enter(t, *callee);
            }
        }
    }

    fn exec_terminator(&mut self, t: ThreadId, func_id: FuncId, monitor: &mut dyn Monitor) {
        let program = self.program;
        let (block_id, term) = {
            let frame = self.threads[t.index()].frame();
            let block = program.function(frame.func).block(frame.block);
            (frame.block, block.term.clone())
        };
        match term {
            Terminator::Goto(target) => {
                let frame = self.threads[t.index()].frame_mut();
                frame.block = target;
                frame.ip = 0;
                monitor.on_edge(t, func_id, block_id, target);
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let frame = self.threads[t.index()].frame_mut();
                let taken = if operand(frame, cond) != 0 {
                    then_bb
                } else {
                    else_bb
                };
                frame.block = taken;
                frame.ip = 0;
                self.stats.branches += 1;
                monitor.on_edge(t, func_id, block_id, taken);
            }
            Terminator::Return(value) => {
                let ret = {
                    let frame = self.threads[t.index()].frame();
                    value.map(|op| operand(frame, op))
                };
                let popped = self.threads[t.index()].frames.pop().expect("frame exists");
                monitor.on_func_exit(t, popped.func);
                if self.threads[t.index()].frames.is_empty() {
                    // Thread exit: flush buffered stores, wake joiners.
                    self.flush_buffer(t, monitor);
                    self.threads[t.index()].status = Status::Exited;
                    for th in &mut self.threads {
                        if th.status == Status::BlockedJoin(t) {
                            th.status = Status::Runnable;
                        }
                    }
                    monitor.on_thread_exit(t);
                } else if let (Some(dst), Some(v)) = (popped.ret_dst, ret) {
                    self.threads[t.index()].frame_mut().locals[dst.index()] = v;
                }
            }
        }
    }
}

fn operand(frame: &Frame, op: Operand) -> i64 {
    match op {
        Operand::Local(l) => frame.locals[l.index()],
        Operand::Const(c) => c,
    }
}

/// Runs `program` once with a seeded [`crate::sched::RandomScheduler`] —
/// the everyday entry point for exploration.
pub fn run_with_seed(
    program: &Program,
    model: MemModel,
    seed: u64,
    monitor: &mut dyn Monitor,
) -> (Outcome, ExecStats) {
    let mut vm = Vm::new(program, model);
    let mut sched = crate::sched::RandomScheduler::new(seed);
    let outcome = vm.run(&mut sched, monitor);
    (outcome, *vm.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{CountingMonitor, NullMonitor};
    use crate::sched::{FifoScheduler, RandomScheduler};
    use clap_ir::parse;

    fn run(src: &str, model: MemModel, seed: u64) -> (Outcome, Vec<i64>) {
        let p = parse(src).unwrap();
        let mut vm = Vm::new(&p, model);
        let mut sched = RandomScheduler::new(seed);
        let outcome = vm.run(&mut sched, &mut NullMonitor);
        let finals = (0..p.globals.len())
            .map(|g| vm.read_global(clap_ir::GlobalId::from(g), 0))
            .collect();
        (outcome, finals)
    }

    #[test]
    fn sequential_arithmetic() {
        let (o, g) = run(
            "global int x = 0; fn main() { x = 2 + 3 * 4; }",
            MemModel::Sc,
            0,
        );
        assert_eq!(o, Outcome::Completed);
        assert_eq!(g[0], 14);
    }

    #[test]
    fn loops_and_branches() {
        let (o, g) = run(
            "global int s = 0;
             fn main() { let i: int = 0; while (i < 10) { if (i % 2 == 0) { s = s + i; } i = i + 1; } }",
            MemModel::Sc,
            1,
        );
        assert_eq!(o, Outcome::Completed);
        assert_eq!(g[0], 2 + 4 + 6 + 8);
    }

    #[test]
    fn calls_return_values() {
        let (o, g) = run(
            "global int r = 0;
             fn sq(v: int) { return v * v; }
             fn main() { r = sq(7); }",
            MemModel::Sc,
            0,
        );
        assert_eq!(o, Outcome::Completed);
        assert_eq!(g[0], 49);
    }

    #[test]
    fn recursion_works() {
        let (o, g) = run(
            "global int r = 0;
             fn fact(n: int) { if (n <= 1) { return 1; } let rec: int = fact(n - 1); return n * rec; }
             fn main() { r = fact(6); }",
            MemModel::Sc,
            0,
        );
        assert_eq!(o, Outcome::Completed);
        assert_eq!(g[0], 720);
    }

    #[test]
    fn fork_join_with_locks_is_race_free() {
        for seed in 0..20 {
            let (o, g) = run(
                "global int x = 0; mutex m;
                 fn w() { lock(m); let v: int = x; x = v + 1; unlock(m); }
                 fn main() { let a: thread = fork w(); let b: thread = fork w(); join a; join b; }",
                MemModel::Sc,
                seed,
            );
            assert_eq!(o, Outcome::Completed, "seed {seed}");
            assert_eq!(g[0], 2, "locked increments never race (seed {seed})");
        }
    }

    #[test]
    fn unlocked_increments_race_under_some_seed() {
        let src = "global int x = 0;
             fn w() { let v: int = x; yield; x = v + 1; }
             fn main() { let a: thread = fork w(); let b: thread = fork w(); join a; join b;
                         assert(x == 2, \"lost update\"); }";
        let mut lost = false;
        for seed in 0..200 {
            let (o, _) = run(src, MemModel::Sc, seed);
            if o.is_failure() {
                lost = true;
                break;
            }
        }
        assert!(lost, "some seed must expose the lost update");
    }

    #[test]
    fn assert_failure_reports_site() {
        let p = parse("fn main() { assert(1 == 2, \"always\"); }").unwrap();
        let mut vm = Vm::new(&p, MemModel::Sc);
        let o = vm.run(&mut FifoScheduler, &mut NullMonitor);
        assert_eq!(
            o,
            Outcome::AssertFailed {
                assert: AssertId(0),
                thread: ThreadId::MAIN
            }
        );
    }

    #[test]
    fn deadlock_detected() {
        let (o, _) = run("mutex m; fn main() { lock(m); lock(m); }", MemModel::Sc, 0);
        assert_eq!(o, Outcome::Deadlock);
    }

    #[test]
    fn unlock_not_owned_faults() {
        let (o, _) = run("mutex m; fn main() { unlock(m); }", MemModel::Sc, 0);
        assert!(matches!(o, Outcome::Fault { .. }));
    }

    #[test]
    fn array_out_of_bounds_faults() {
        let (o, _) = run("global int a[2]; fn main() { a[5] = 1; }", MemModel::Sc, 0);
        assert!(matches!(o, Outcome::Fault { .. }));
    }

    #[test]
    fn wait_signal_round_trip() {
        let src = "global int ready = 0; global int got = 0; mutex m; cond c;
             fn consumer() {
                 lock(m);
                 while (ready == 0) { wait(c, m); }
                 got = 1;
                 unlock(m);
             }
             fn main() {
                 let t: thread = fork consumer();
                 lock(m); ready = 1; signal(c); unlock(m);
                 join t;
                 assert(got == 1, \"consumer must run\");
             }";
        for seed in 0..30 {
            let (o, g) = run(src, MemModel::Sc, seed);
            assert_eq!(o, Outcome::Completed, "seed {seed}");
            assert_eq!(g[1], 1);
        }
    }

    #[test]
    fn broadcast_wakes_all() {
        let src = "global int ready = 0; global int done = 0; mutex m; cond c;
             fn waiter() {
                 lock(m);
                 while (ready == 0) { wait(c, m); }
                 done = done + 1;
                 unlock(m);
             }
             fn main() {
                 let a: thread = fork waiter();
                 let b: thread = fork waiter();
                 let d: thread = fork waiter();
                 lock(m); ready = 1; broadcast(c); unlock(m);
                 join a; join b; join d;
                 assert(done == 3);
             }";
        for seed in 0..30 {
            let (o, _) = run(src, MemModel::Sc, seed);
            assert_eq!(o, Outcome::Completed, "seed {seed}");
        }
    }

    #[test]
    fn store_buffering_visible_under_tso_not_sc() {
        // Classic SB litmus: r1 = r2 = 0 is possible only with store buffers.
        let src = "global int x = 0; global int y = 0;
             global int r1 = -1; global int r2 = -1;
             fn t1() { x = 1; r1 = y; }
             fn t2() { y = 1; r2 = x; }
             fn main() {
                 let a: thread = fork t1(); let b: thread = fork t2();
                 join a; join b;
                 assert(r1 + r2 > 0, \"SB relaxation\");
             }";
        let mut sc_failed = false;
        for seed in 0..300 {
            let (o, _) = run(src, MemModel::Sc, seed);
            assert_ne!(o, Outcome::Deadlock);
            if o.is_failure() {
                sc_failed = true;
            }
        }
        assert!(!sc_failed, "SC forbids r1 = r2 = 0");
        let mut tso_failed = false;
        for seed in 0..300 {
            let (o, _) = run(src, MemModel::Tso, seed);
            if o.is_failure() {
                tso_failed = true;
                break;
            }
        }
        assert!(tso_failed, "TSO store buffering must be observable");
    }

    #[test]
    fn pso_reorders_stores_tso_does_not() {
        // Message-passing litmus: under TSO the data=1 store drains before
        // flag=1 (FIFO); under PSO flag can drain first, so the reader can
        // see flag=1, data=0.
        let src = "global int data = 0; global int flag = 0; global int seen = -1;
             fn writer() { data = 1; flag = 1; }
             fn reader() { let f: int = flag; if (f == 1) { seen = data; } }
             fn main() {
                 let w: thread = fork writer(); let r: thread = fork reader();
                 join w; join r;
                 assert(seen != 0, \"MP relaxation\");
             }";
        let mut tso_failed = false;
        for seed in 0..400 {
            let (o, _) = run(src, MemModel::Tso, seed);
            if o.is_failure() {
                tso_failed = true;
            }
        }
        assert!(!tso_failed, "TSO preserves store order");
        // The writer exits (and thus fences) right after its two stores, so
        // the reordering window is a single scheduler step: sweep a larger
        // seed range at medium stickiness to hit it.
        let p = parse(src).unwrap();
        let mut pso_failed = false;
        for seed in 0..4000 {
            let mut vm = Vm::new(&p, MemModel::Pso);
            let mut sched = RandomScheduler::with_stickiness(seed, 0.5);
            if vm.run(&mut sched, &mut NullMonitor).is_failure() {
                pso_failed = true;
                break;
            }
        }
        assert!(pso_failed, "PSO must reorder the two stores");
    }

    #[test]
    fn store_forwarding_sees_own_buffer() {
        // A thread always reads its own latest store even while buffered.
        let src = "global int x = 0;
             fn main() { x = 41; let v: int = x; x = v + 1; assert(x == 42); }";
        for model in [MemModel::Tso, MemModel::Pso] {
            for seed in 0..50 {
                let p = parse(src).unwrap();
                let mut vm = Vm::new(&p, model);
                let mut sched = RandomScheduler::new(seed);
                let o = vm.run(&mut sched, &mut NullMonitor);
                assert_eq!(o, Outcome::Completed, "{model} seed {seed}");
            }
        }
    }

    #[test]
    fn locks_are_fences() {
        // With lock/unlock around accesses, even PSO behaves like SC.
        let src = "global int data = 0; global int flag = 0; global int seen = -1; mutex m;
             fn writer() { lock(m); data = 1; flag = 1; unlock(m); }
             fn reader() { lock(m); let f: int = flag; if (f == 1) { seen = data; } unlock(m); }
             fn main() {
                 let w: thread = fork writer(); let r: thread = fork reader();
                 join w; join r;
                 assert(seen != 0);
             }";
        for seed in 0..200 {
            let (o, _) = run(src, MemModel::Pso, seed);
            assert!(!o.is_failure(), "fenced MP cannot fail (seed {seed})");
        }
    }

    #[test]
    fn atomic_rmw_and_cas_are_atomic_under_every_model() {
        // fetch_add never loses updates, and exactly one of two competing
        // CASes wins, regardless of memory model: RMWs read and write the
        // visible value in one indivisible step.
        let src = "atomic int n = 0; atomic int l = 0; global int wins = 0;
             fn adder() { let o: int = fetch_add(n, 1, relaxed); }
             fn locker() {
                 let o: int = cas(l, 0, 1, relaxed);
                 if (o == 0) { let w: int = fetch_add(wins2, 1, relaxed); }
             }
             fn main() {
                 let a: thread = fork adder(); let b: thread = fork adder();
                 let c: thread = fork locker(); let d: thread = fork locker();
                 join a; join b; join c; join d;
                 let v: int = load(n, seq_cst);
                 let w: int = load(wins2, seq_cst);
                 assert(v == 2, \"lost update\");
                 assert(w == 1, \"CAS won twice or never\");
             }
             atomic int wins2 = 0;";
        for model in [MemModel::Sc, MemModel::Tso, MemModel::Pso, MemModel::C11] {
            for seed in 0..100 {
                let (o, _) = run(src, model, seed);
                assert_eq!(o, Outcome::Completed, "{model} seed {seed}");
            }
        }
    }

    #[test]
    fn c11_mp_relaxed_fails_release_is_safe() {
        // Message-passing litmus on atomics. With a relaxed flag publish
        // the two pending stores drain independently (flag first is
        // reachable); a release publish is gated behind the data store.
        let mp = |publish_ord: &str| {
            format!(
                "atomic int data = 0; atomic int flag = 0; global int seen = -1;
                 fn writer() {{ store(data, 1, relaxed); store(flag, 1, {publish_ord}); }}
                 fn reader() {{
                     let f: int = load(flag, acquire);
                     if (f == 1) {{ let d: int = load(data, acquire); seen = d; }}
                 }}
                 fn main() {{
                     let w: thread = fork writer(); let r: thread = fork reader();
                     join w; join r;
                     assert(seen != 0, \"MP relaxation\");
                 }}"
            )
        };
        let relaxed = parse(&mp("relaxed")).unwrap();
        let mut c11_failed = false;
        for seed in 0..4000 {
            let mut vm = Vm::new(&relaxed, MemModel::C11);
            let mut sched = RandomScheduler::with_stickiness(seed, 0.5);
            if vm.run(&mut sched, &mut NullMonitor).is_failure() {
                c11_failed = true;
                break;
            }
        }
        assert!(c11_failed, "relaxed publish must be reorderable under C11");
        // Release publish: safe under C11. And under SC/TSO/PSO atomics
        // are seq_cst fences, so even the relaxed version cannot fail.
        let release = parse(&mp("release")).unwrap();
        for seed in 0..400 {
            let mut vm = Vm::new(&release, MemModel::C11);
            let mut sched = RandomScheduler::with_stickiness(seed, 0.5);
            let o = vm.run(&mut sched, &mut NullMonitor);
            assert!(!o.is_failure(), "release publish is ordered (seed {seed})");
        }
        for model in [MemModel::Sc, MemModel::Tso, MemModel::Pso] {
            for seed in 0..200 {
                let (o, _) = run(&mp("relaxed"), model, seed);
                assert!(!o.is_failure(), "atomics fence under {model} (seed {seed})");
            }
        }
    }

    #[test]
    fn c11_relaxed_cas_publishes_only_its_own_location() {
        // Treiber-style publication: the node value is a pending relaxed
        // store when a relaxed CAS publishes the top pointer — the CAS
        // writes immediately but only fences its own location, so a reader
        // can observe the new top with a stale value. A release CAS drains
        // the whole buffer first.
        let push = |cas_ord: &str| {
            format!(
                "atomic int top = 0; atomic int val = 0; global int seen = -1;
                 fn pusher() {{ store(val, 42, relaxed); let o: int = cas(top, 0, 1, {cas_ord}); }}
                 fn popper() {{
                     let t: int = load(top, acquire);
                     if (t == 1) {{ let v: int = load(val, acquire); seen = v; }}
                 }}
                 fn main() {{
                     let a: thread = fork pusher(); let b: thread = fork popper();
                     join a; join b;
                     assert(seen != 0, \"stale node value\");
                 }}"
            )
        };
        let relaxed = parse(&push("relaxed")).unwrap();
        let mut failed = false;
        for seed in 0..4000 {
            let mut vm = Vm::new(&relaxed, MemModel::C11);
            let mut sched = RandomScheduler::with_stickiness(seed, 0.5);
            if vm.run(&mut sched, &mut NullMonitor).is_failure() {
                failed = true;
                break;
            }
        }
        assert!(failed, "relaxed CAS publication must be racy under C11");
        let release = parse(&push("release")).unwrap();
        for seed in 0..400 {
            let mut vm = Vm::new(&release, MemModel::C11);
            let mut sched = RandomScheduler::with_stickiness(seed, 0.5);
            let o = vm.run(&mut sched, &mut NullMonitor);
            assert!(!o.is_failure(), "release CAS flushes (seed {seed})");
        }
    }

    #[test]
    fn c11_atomic_forwarding_and_seq_cst_fence() {
        // A thread reads its own pending relaxed store (forwarding), and a
        // seq_cst op drains the buffer so the value is globally visible.
        let src = "atomic int x = 0;
             fn main() {
                 store(x, 41, relaxed);
                 let v: int = load(x, relaxed);
                 store(x, v + 1, seq_cst);
                 let w: int = load(x, seq_cst);
                 assert(w == 42);
             }";
        for seed in 0..50 {
            let (o, _) = run(src, MemModel::C11, seed);
            assert_eq!(o, Outcome::Completed, "seed {seed}");
        }
    }

    #[test]
    fn stats_and_monitor_counts_agree() {
        let p = parse(
            "global int x = 0; mutex m;
             fn w() { lock(m); x = x + 1; unlock(m); }
             fn main() { let a: thread = fork w(); join a; }",
        )
        .unwrap();
        let mut vm = Vm::new(&p, MemModel::Sc);
        let mut mon = CountingMonitor::default();
        let mut sched = RandomScheduler::new(3);
        let o = vm.run(&mut sched, &mut mon);
        assert_eq!(o, Outcome::Completed);
        assert_eq!(mon.threads, 2);
        assert_eq!(mon.accesses, 2); // one load + one store of x
        assert_eq!(mon.syncs, 4); // lock, unlock, fork, join
                                  // SAPs = shared accesses + syncs
        assert_eq!(vm.stats().saps, mon.accesses + mon.syncs);
    }

    #[test]
    fn step_limit_reported() {
        let p = parse("fn main() { while (true) { yield; } }").unwrap();
        let mut vm = Vm::new(&p, MemModel::Sc);
        vm.set_step_limit(1000);
        let o = vm.run(&mut FifoScheduler, &mut NullMonitor);
        assert_eq!(o, Outcome::StepLimit);
    }

    #[test]
    fn shared_spec_filters_saps() {
        let p = parse("global int x = 0; global int y = 0; fn main() { x = 1; y = 1; }").unwrap();
        let x = p.global_by_name("x").unwrap();
        let mut set = std::collections::HashSet::new();
        set.insert(x);
        let mut vm = Vm::with_shared(&p, MemModel::Sc, SharedSpec::Set(set));
        let o = vm.run(&mut FifoScheduler, &mut NullMonitor);
        assert_eq!(o, Outcome::Completed);
        assert_eq!(vm.stats().saps, 1, "only x counts as a SAP");
        assert_eq!(vm.read_global(p.global_by_name("y").unwrap(), 0), 1);
    }

    #[test]
    fn preview_matches_execution() {
        let p =
            parse("global int x = 0; mutex m; fn main() { lock(m); x = 1; unlock(m); }").unwrap();
        let mut vm = Vm::new(&p, MemModel::Tso);
        assert!(matches!(
            vm.preview_step(ThreadId::MAIN),
            StepPreview::Sap {
                po_index: 0,
                kind: SapPreviewKind::Lock(_)
            }
        ));
        let mut sched = FifoScheduler;
        // Execute lock.
        let actions = vm.enabled_actions();
        let i = sched.pick(&vm, &actions);
        match actions[i] {
            Action::Step(t) => vm.step_thread(t, &mut NullMonitor),
            Action::Drain(t, a) => vm.drain(t, a, &mut NullMonitor),
        }
        assert!(matches!(
            vm.preview_step(ThreadId::MAIN),
            StepPreview::BufferedStore { po_index: 1 }
        ));
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        // Run N steps, snapshot, run to completion twice from the
        // snapshot with identical schedulers: outcomes and final state
        // must match — the §6.4 checkpointing primitive.
        let p = parse(
            "global int x = 0; mutex m;
             fn w(n: int) { let i: int = 0; while (i < n) { lock(m); x = x + 1; unlock(m); i = i + 1; } }
             fn main() { let a: thread = fork w(3); let b: thread = fork w(4); join a; join b;
                         assert(x == 7); }",
        )
        .unwrap();
        let mut vm = Vm::new(&p, MemModel::Tso);
        let mut sched = RandomScheduler::new(11);
        // Advance 40 scheduler steps by hand.
        for _ in 0..40 {
            if vm.outcome().is_some() {
                break;
            }
            let actions = vm.enabled_actions();
            if actions.is_empty() {
                break;
            }
            let i = sched.pick(&vm, &actions);
            vm.step(actions[i], &mut NullMonitor);
        }
        let snapshot = vm.snapshot();
        assert!(snapshot.thread_count() >= 1);

        let finish = |vm: &mut Vm<'_>| {
            let mut sched = RandomScheduler::new(99);
            let outcome = vm.run(&mut sched, &mut NullMonitor);
            (
                outcome,
                vm.read_global(p.global_by_name("x").unwrap(), 0),
                vm.stats().steps,
            )
        };
        let mut vm_a = Vm::new(&p, MemModel::Tso);
        vm_a.restore(&snapshot);
        let a = finish(&mut vm_a);
        let mut vm_b = Vm::new(&p, MemModel::Tso);
        vm_b.restore_from(snapshot); // last use: the by-value hand-off
        let b = finish(&mut vm_b);
        assert_eq!(a, b, "restored runs are deterministic given the seed");
        assert_eq!(a.0, Outcome::Completed);
        assert_eq!(a.1, 7);
    }

    #[test]
    fn same_seed_same_everything() {
        // Full-run determinism: identical seeds yield identical outcomes,
        // stats and memory, across models.
        let p = parse(
            "global int x = 0; global int y = 0;
             fn w() { let v: int = x; yield; x = v + 1; y = y + v; }
             fn main() { let a: thread = fork w(); let b: thread = fork w(); join a; join b; }",
        )
        .unwrap();
        for model in [MemModel::Sc, MemModel::Tso, MemModel::Pso] {
            for seed in [0u64, 7, 123] {
                let run = |_: ()| {
                    let mut vm = Vm::new(&p, model);
                    let mut sched = RandomScheduler::new(seed);
                    let outcome = vm.run(&mut sched, &mut NullMonitor);
                    (
                        outcome,
                        *vm.stats(),
                        vm.read_global(p.global_by_name("x").unwrap(), 0),
                        vm.read_global(p.global_by_name("y").unwrap(), 0),
                    )
                };
                assert_eq!(run(()), run(()), "{model} seed {seed}");
            }
        }
    }

    #[test]
    fn backends_agree_step_for_step() {
        // The flat-bytecode interpreter must match the tree walker under
        // identical schedules: same outcome, same stats (steps,
        // instructions, branches, saps, drains), same memory.
        let src = "global int x = 0; global int y = 0; mutex m; cond c;
             global int ready = 0;
             fn helper(n: int) { return n * 2; }
             fn w() { let v: int = x; yield; x = v + 1; y = helper(v); }
             fn waiter() { lock(m); while (ready == 0) { wait(c, m); } unlock(m); }
             fn main() {
                 let a: thread = fork w(); let b: thread = fork w();
                 let t: thread = fork waiter();
                 lock(m); ready = 1; signal(c); unlock(m);
                 join a; join b; join t;
             }";
        let p = parse(src).unwrap();
        for model in [MemModel::Sc, MemModel::Tso, MemModel::Pso] {
            for seed in 0..40u64 {
                let run_backend = |backend: Backend| {
                    let mut vm = Vm::with_backend(&p, model, SharedSpec::All, backend);
                    let mut sched = RandomScheduler::new(seed);
                    let outcome = vm.run(&mut sched, &mut NullMonitor);
                    let mem: Vec<i64> = (0..p.globals.len())
                        .map(|g| vm.read_global(clap_ir::GlobalId::from(g), 0))
                        .collect();
                    (outcome, *vm.stats(), mem)
                };
                assert_eq!(
                    run_backend(Backend::Tree),
                    run_backend(Backend::Bytecode),
                    "{model} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn reset_equals_fresh_vm() {
        let p = parse(
            "global int x = 0; mutex m;
             fn w() { lock(m); x = x + 1; unlock(m); }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2); }",
        )
        .unwrap();
        let mut vm = Vm::new(&p, MemModel::Tso);
        let fresh = |seed: u64| {
            let mut vm = Vm::new(&p, MemModel::Tso);
            let mut sched = RandomScheduler::new(seed);
            let o = vm.run(&mut sched, &mut NullMonitor);
            (o, *vm.stats())
        };
        for seed in 0..25u64 {
            vm.reset();
            let mut sched = RandomScheduler::new(seed);
            let o = vm.run(&mut sched, &mut NullMonitor);
            assert_eq!((o, *vm.stats()), fresh(seed), "seed {seed}");
        }
    }

    #[test]
    fn snapshots_transfer_across_backends() {
        // A snapshot captured mid-run on one backend must restore into
        // the other and finish identically: `pc` is re-derived on
        // restore, `(func, block, ip)` is the portable coordinate.
        let p = parse(
            "global int x = 0;
             fn w(n: int) { let i: int = 0; while (i < n) { x = x + 1; yield; i = i + 1; } }
             fn main() { let a: thread = fork w(5); let b: thread = fork w(3); join a; join b; }",
        )
        .unwrap();
        for (from, to) in [
            (Backend::Tree, Backend::Bytecode),
            (Backend::Bytecode, Backend::Tree),
        ] {
            let mut vm = Vm::with_backend(&p, MemModel::Tso, SharedSpec::All, from);
            let mut sched = RandomScheduler::new(5);
            for _ in 0..30 {
                if vm.outcome().is_some() {
                    break;
                }
                let actions = vm.enabled_actions();
                if actions.is_empty() {
                    break;
                }
                let i = sched.pick(&vm, &actions);
                vm.step(actions[i], &mut NullMonitor);
            }
            let snap = vm.snapshot();
            let finish = |backend: Backend| {
                let mut vm = Vm::with_backend(&p, MemModel::Tso, SharedSpec::All, backend);
                vm.restore(&snap);
                let mut sched = RandomScheduler::new(77);
                let o = vm.run(&mut sched, &mut NullMonitor);
                (
                    o,
                    *vm.stats(),
                    vm.read_global(p.global_by_name("x").unwrap(), 0),
                )
            };
            assert_eq!(finish(from), finish(to), "{from} -> {to}");
        }
    }

    #[test]
    fn with_compiled_shares_bytecode() {
        let p = parse("global int x = 0; fn main() { x = 1; }").unwrap();
        let vm = Vm::new(&p, MemModel::Sc);
        let compiled = Arc::clone(vm.compiled());
        let mut vm2 = Vm::with_compiled(
            &p,
            compiled,
            MemModel::Sc,
            SharedSpec::All,
            Backend::Bytecode,
        );
        let o = vm2.run(&mut FifoScheduler, &mut NullMonitor);
        assert_eq!(o, Outcome::Completed);
        assert_eq!(vm2.read_global(p.global_by_name("x").unwrap(), 0), 1);
    }

    #[test]
    fn lineages_are_canonical() {
        let p = parse(
            "fn w() {} fn main() { let a: thread = fork w(); let b: thread = fork w(); join a; join b; }",
        )
        .unwrap();
        let mut vm = Vm::new(&p, MemModel::Sc);
        let mut sched = RandomScheduler::new(9);
        vm.run(&mut sched, &mut NullMonitor);
        assert_eq!(vm.thread(ThreadId(1)).lineage.to_string(), "0.1");
        assert_eq!(vm.thread(ThreadId(2)).lineage.to_string(), "0.2");
    }
}
