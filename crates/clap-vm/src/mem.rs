//! Shared memory with pluggable consistency models.
//!
//! * **SC** — stores hit memory immediately.
//! * **TSO** — one FIFO store buffer per thread; a store enters the buffer
//!   and becomes globally visible only when *drained*; a thread's own loads
//!   forward from the newest matching buffered store.
//! * **PSO** — one FIFO buffer per (thread, address); buffers for different
//!   addresses drain independently, so stores to different locations can
//!   become visible out of program order.
//!
//! Drains are explicit [`super::sched::Action`]s chosen by the scheduler,
//! which is exactly how the paper simulates relaxed-memory effects (§6,
//! "we simulated a FIFO store buffer for each thread … one per shared
//! variable"). Synchronization operations act as full fences (flush).

use clap_ir::{GlobalId, Program};
use std::collections::VecDeque;

/// A flattened cell address within the global memory image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u32);

impl Addr {
    /// The underlying flat index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Maps `(global, element)` pairs to flat [`Addr`]s.
#[derive(Debug, Clone)]
pub struct Layout {
    base: Vec<u32>,
    lens: Vec<u32>,
    total: usize,
}

impl Layout {
    /// Builds the layout for a program's globals.
    pub fn new(program: &Program) -> Self {
        let mut base = Vec::with_capacity(program.globals.len());
        let mut lens = Vec::with_capacity(program.globals.len());
        let mut next = 0u32;
        for g in &program.globals {
            base.push(next);
            lens.push(g.cells() as u32);
            next += g.cells() as u32;
        }
        Layout {
            base,
            lens,
            total: next as usize,
        }
    }

    /// Resolves a global + element offset to an address.
    ///
    /// Returns `None` when `offset` is outside the global's extent (the VM
    /// reports this as a fault rather than corrupting a neighbour).
    pub fn addr(&self, global: GlobalId, offset: i64) -> Option<Addr> {
        let len = *self.lens.get(global.index())? as i64;
        if offset < 0 || offset >= len {
            return None;
        }
        Some(Addr(self.base[global.index()] + offset as u32))
    }

    /// Reverse-maps an address to its `(global, element)` pair.
    pub fn unresolve(&self, addr: Addr) -> (GlobalId, usize) {
        // Globals are laid out consecutively, so find the last base <= addr.
        let mut g = 0;
        for (i, &b) in self.base.iter().enumerate() {
            if b <= addr.0 {
                g = i;
            } else {
                break;
            }
        }
        (GlobalId::from(g), (addr.0 - self.base[g]) as usize)
    }

    /// Total number of cells.
    pub fn total_cells(&self) -> usize {
        self.total
    }
}

/// The memory-consistency model an execution runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemModel {
    /// Sequential consistency.
    #[default]
    Sc,
    /// Total store order (SPARC TSO / x86-like).
    Tso,
    /// Partial store order.
    Pso,
    /// C11-style atomics: plain accesses stay sequentially consistent, but
    /// atomic `load`/`store`/`fetch_add`/`cas` carry per-operation orderings
    /// (`relaxed`/`acquire`/`release`/`seq_cst`) whose weak behaviours are
    /// modelled as schedulable store-propagation actions.
    C11,
}

impl MemModel {
    /// `true` when the model buffers **plain** stores (TSO/PSO). Under C11
    /// plain accesses are sequentially consistent; only atomic stores with
    /// non-`seq_cst` orderings enter the buffer.
    pub fn buffered(self) -> bool {
        matches!(self, MemModel::Tso | MemModel::Pso)
    }

    /// `true` when executions may carry pending buffered stores at all —
    /// plain stores under TSO/PSO, relaxed/release atomic stores under C11.
    /// Gates the enabled-action scan for [`super::sched::Action::Drain`].
    pub fn uses_buffers(self) -> bool {
        !matches!(self, MemModel::Sc)
    }
}

impl std::fmt::Display for MemModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemModel::Sc => write!(f, "SC"),
            MemModel::Tso => write!(f, "TSO"),
            MemModel::Pso => write!(f, "PSO"),
            MemModel::C11 => write!(f, "C11"),
        }
    }
}

/// One buffered (not yet globally visible) store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferedStore {
    /// Target address.
    pub addr: Addr,
    /// Value to be written.
    pub value: i64,
    /// The thread-local program-order index of this store among the
    /// thread's shared access points (used by the replayer to drain the
    /// *scheduled* store).
    pub po_index: u64,
    /// `true` for a C11 `release`-ordered atomic store: it may only become
    /// visible once every earlier store of the same thread has (release
    /// semantics — all prior writes are visible before the release write).
    /// Always `false` for plain TSO/PSO stores.
    pub release: bool,
}

/// A single thread's store buffer.
///
/// The same structure serves TSO and PSO: under TSO drains must pop the
/// overall FIFO front; under PSO any address's front entry may drain.
#[derive(Debug, Clone, Default)]
pub struct StoreBuffer {
    entries: VecDeque<BufferedStore>,
}

impl StoreBuffer {
    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of buffered stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Enqueues a store.
    pub fn push(&mut self, store: BufferedStore) {
        self.entries.push_back(store);
    }

    /// The newest buffered value for `addr`, if any (store-to-load
    /// forwarding).
    pub fn forward(&self, addr: Addr) -> Option<i64> {
        self.entries
            .iter()
            .rev()
            .find(|s| s.addr == addr)
            .map(|s| s.value)
    }

    /// Addresses that may legally drain next under `model`:
    /// TSO — only the FIFO front; PSO — the front entry of each address.
    pub fn drainable(&self, model: MemModel) -> Vec<Addr> {
        let mut out = Vec::new();
        self.for_each_drainable(model, |addr| out.push(addr));
        out
    }

    /// Visits each drainable address (same order as
    /// [`StoreBuffer::drainable`]) without allocating — the interpreter's
    /// per-step enabled-action scan.
    pub fn for_each_drainable(&self, model: MemModel, mut f: impl FnMut(Addr)) {
        match model {
            MemModel::Sc => {}
            MemModel::Tso => {
                if let Some(s) = self.entries.front() {
                    f(s.addr);
                }
            }
            MemModel::Pso => {
                for (i, s) in self.entries.iter().enumerate() {
                    let first = !self.entries.iter().take(i).any(|p| p.addr == s.addr);
                    if first {
                        f(s.addr);
                    }
                }
            }
            MemModel::C11 => {
                // Per-address FIFO like PSO (C11 coherence / modification
                // order), except a `release` store is gated until it is the
                // oldest entry in the whole buffer: everything the thread
                // wrote before it must already be visible.
                for (i, s) in self.entries.iter().enumerate() {
                    let first = !self.entries.iter().take(i).any(|p| p.addr == s.addr);
                    if first && (!s.release || i == 0) {
                        f(s.addr);
                    }
                }
            }
        }
    }

    /// Overwrites the buffer's contents in place (snapshot restore).
    pub fn assign(&mut self, stores: &[BufferedStore]) {
        self.entries.clear();
        self.entries.extend(stores.iter().copied());
    }

    /// Empties the buffer without deallocating.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Removes and returns the oldest buffered store to `addr`.
    ///
    /// Under TSO callers must only pass the front address (as reported by
    /// [`StoreBuffer::drainable`]); under PSO any address's oldest entry may
    /// drain, which is what makes PSO reorder stores to different locations.
    pub fn drain_addr(&mut self, addr: Addr) -> Option<BufferedStore> {
        let pos = self.entries.iter().position(|s| s.addr == addr)?;
        self.entries.remove(pos)
    }

    /// Drains everything in FIFO order (a fence), returning the stores in
    /// the order they must hit memory.
    pub fn flush(&mut self) -> Vec<BufferedStore> {
        self.entries.drain(..).collect()
    }

    /// Iterates over buffered stores in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &BufferedStore> {
        self.entries.iter()
    }
}

/// The global memory image.
#[derive(Debug, Clone)]
pub struct Memory {
    cells: Vec<i64>,
}

impl Memory {
    /// Creates memory initialized from the program's global declarations.
    pub fn new(program: &Program, layout: &Layout) -> Self {
        let mut m = Memory {
            cells: vec![0i64; layout.total_cells()],
        };
        m.reinit(program, layout);
        m
    }

    /// Re-applies the program's initial values in place — the realloc-free
    /// equivalent of building a fresh [`Memory`].
    pub fn reinit(&mut self, program: &Program, layout: &Layout) {
        self.cells.fill(0);
        for (i, g) in program.globals.iter().enumerate() {
            if g.len.is_none() {
                let addr = layout.addr(GlobalId::from(i), 0).expect("scalar in range");
                self.cells[addr.index()] = g.init;
            }
        }
    }

    /// Reads a cell.
    pub fn read(&self, addr: Addr) -> i64 {
        self.cells[addr.index()]
    }

    /// Writes a cell.
    pub fn write(&mut self, addr: Addr, value: i64) {
        self.cells[addr.index()] = value;
    }

    /// The flat cell image (snapshot capture).
    pub fn cells(&self) -> &[i64] {
        &self.cells
    }

    /// Overwrites the image in place from a captured cell slice.
    pub fn assign(&mut self, cells: &[i64]) {
        self.cells.clear();
        self.cells.extend_from_slice(cells);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clap_ir::parse;

    fn layout() -> (Layout, clap_ir::Program) {
        let p =
            parse("global int x = 7; global int a[3]; global int y = -1; fn main() {}").unwrap();
        (Layout::new(&p), p)
    }

    #[test]
    fn layout_flattens_globals() {
        let (l, p) = layout();
        assert_eq!(l.total_cells(), 5);
        let x = p.global_by_name("x").unwrap();
        let a = p.global_by_name("a").unwrap();
        let y = p.global_by_name("y").unwrap();
        assert_eq!(l.addr(x, 0), Some(Addr(0)));
        assert_eq!(l.addr(a, 2), Some(Addr(3)));
        assert_eq!(l.addr(y, 0), Some(Addr(4)));
        assert_eq!(l.addr(a, 3), None, "out of bounds");
        assert_eq!(l.addr(a, -1), None);
    }

    #[test]
    fn layout_unresolve_round_trips() {
        let (l, p) = layout();
        let a = p.global_by_name("a").unwrap();
        let addr = l.addr(a, 1).unwrap();
        assert_eq!(l.unresolve(addr), (a, 1));
        let y = p.global_by_name("y").unwrap();
        assert_eq!(l.unresolve(l.addr(y, 0).unwrap()), (y, 0));
    }

    #[test]
    fn memory_initialized_from_decls() {
        let (l, p) = layout();
        let m = Memory::new(&p, &l);
        assert_eq!(m.read(Addr(0)), 7);
        assert_eq!(m.read(Addr(1)), 0); // array cell
        assert_eq!(m.read(Addr(4)), -1);
    }

    #[test]
    fn tso_buffer_is_fifo() {
        let mut b = StoreBuffer::default();
        b.push(BufferedStore {
            addr: Addr(0),
            value: 1,
            po_index: 0,
            release: false,
        });
        b.push(BufferedStore {
            addr: Addr(1),
            value: 2,
            po_index: 1,
            release: false,
        });
        assert_eq!(b.drainable(MemModel::Tso), vec![Addr(0)]);
        let s = b.drain_addr(Addr(0)).unwrap();
        assert_eq!(s.value, 1);
        assert_eq!(b.drainable(MemModel::Tso), vec![Addr(1)]);
    }

    #[test]
    fn pso_buffer_drains_addresses_independently() {
        let mut b = StoreBuffer::default();
        b.push(BufferedStore {
            addr: Addr(0),
            value: 1,
            po_index: 0,
            release: false,
        });
        b.push(BufferedStore {
            addr: Addr(1),
            value: 2,
            po_index: 1,
            release: false,
        });
        b.push(BufferedStore {
            addr: Addr(0),
            value: 3,
            po_index: 2,
            release: false,
        });
        let d = b.drainable(MemModel::Pso);
        assert_eq!(d, vec![Addr(0), Addr(1)]);
        // Draining addr 1 before addr 0 is the PSO reordering.
        assert_eq!(b.drain_addr(Addr(1)).unwrap().value, 2);
        // Same-address order is preserved.
        assert_eq!(b.drain_addr(Addr(0)).unwrap().value, 1);
        assert_eq!(b.drain_addr(Addr(0)).unwrap().value, 3);
    }

    #[test]
    fn forwarding_returns_newest_store() {
        let mut b = StoreBuffer::default();
        b.push(BufferedStore {
            addr: Addr(0),
            value: 1,
            po_index: 0,
            release: false,
        });
        b.push(BufferedStore {
            addr: Addr(0),
            value: 9,
            po_index: 1,
            release: false,
        });
        assert_eq!(b.forward(Addr(0)), Some(9));
        assert_eq!(b.forward(Addr(1)), None);
    }

    #[test]
    fn flush_preserves_fifo_order() {
        let mut b = StoreBuffer::default();
        b.push(BufferedStore {
            addr: Addr(1),
            value: 1,
            po_index: 0,
            release: false,
        });
        b.push(BufferedStore {
            addr: Addr(0),
            value: 2,
            po_index: 1,
            release: false,
        });
        let flushed = b.flush();
        assert_eq!(
            flushed.iter().map(|s| s.value).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!(b.is_empty());
    }

    #[test]
    fn c11_release_entries_gate_behind_earlier_stores() {
        let mut b = StoreBuffer::default();
        b.push(BufferedStore {
            addr: Addr(0),
            value: 1,
            po_index: 0,
            release: false,
        });
        b.push(BufferedStore {
            addr: Addr(1),
            value: 2,
            po_index: 1,
            release: true,
        });
        // The release store to addr 1 may not drain while the relaxed
        // store to addr 0 is still pending.
        assert_eq!(b.drainable(MemModel::C11), vec![Addr(0)]);
        b.drain_addr(Addr(0)).unwrap();
        // Once it is the oldest entry, the release store drains.
        assert_eq!(b.drainable(MemModel::C11), vec![Addr(1)]);
    }

    #[test]
    fn c11_relaxed_entries_drain_per_address() {
        let mut b = StoreBuffer::default();
        b.push(BufferedStore {
            addr: Addr(0),
            value: 1,
            po_index: 0,
            release: false,
        });
        b.push(BufferedStore {
            addr: Addr(1),
            value: 2,
            po_index: 1,
            release: false,
        });
        // Relaxed stores to different locations reorder freely (per-addr
        // FIFO only), exactly like PSO.
        assert_eq!(b.drainable(MemModel::C11), vec![Addr(0), Addr(1)]);
        assert_eq!(b.drain_addr(Addr(1)).unwrap().value, 2);
    }

    #[test]
    fn sc_has_no_drainable() {
        let mut b = StoreBuffer::default();
        b.push(BufferedStore {
            addr: Addr(0),
            value: 1,
            po_index: 0,
            release: false,
        });
        assert!(b.drainable(MemModel::Sc).is_empty());
        assert!(!MemModel::Sc.buffered());
        assert!(MemModel::Pso.buffered());
    }
}
