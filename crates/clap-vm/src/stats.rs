//! Execution statistics, feeding the paper's Table 1 columns
//! (#Threads, #Inst, #Br, #SAPs).

/// Counters accumulated over one VM run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed (excluding terminators).
    pub instructions: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Shared access points executed (shared loads/stores + sync ops).
    pub saps: u64,
    /// Threads created (including main).
    pub threads: u32,
    /// Scheduler steps taken (instructions + drains + blocked retries).
    pub steps: u64,
    /// Store-buffer drains performed.
    pub drains: u64,
}

impl ExecStats {
    /// Merges another run's counters into this one (for averaging loops).
    pub fn accumulate(&mut self, other: &ExecStats) {
        self.instructions += other.instructions;
        self.branches += other.branches;
        self.saps += other.saps;
        self.threads += other.threads;
        self.steps += other.steps;
        self.drains += other.drains;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_fields() {
        let mut a = ExecStats {
            instructions: 1,
            branches: 2,
            saps: 3,
            threads: 1,
            steps: 4,
            drains: 0,
        };
        let b = ExecStats {
            instructions: 10,
            branches: 20,
            saps: 30,
            threads: 2,
            steps: 40,
            drains: 5,
        };
        a.accumulate(&b);
        assert_eq!(a.instructions, 11);
        assert_eq!(a.branches, 22);
        assert_eq!(a.saps, 33);
        assert_eq!(a.threads, 3);
        assert_eq!(a.drains, 5);
    }
}
