//! The flat-bytecode program representation: the whole CFG lowered once
//! into a single code array with pre-resolved jump targets.
//!
//! The tree-walking interpreter pays three pointer chases per step
//! (`functions[f].blocks[b].instrs[ip]`) plus a terminator clone at every
//! block boundary. This module flattens every function's blocks into one
//! `Vec<Op>` — the shape of souvenir's VM (`VecMap<InstrAddr, Instr>` plus
//! a label→address jump table) — so the interpreter's fetch is a single
//! indexed load of a `Copy` instruction, and `goto`/`branch` become jumps
//! to absolute instruction addresses resolved at compile time.
//!
//! Design invariants (the differential suite in `tests/vm_equivalence.rs`
//! pins all of them):
//!
//! * **One op per scheduler step.** Every IR instruction *and* every
//!   terminator lowers to exactly one [`Op`], including fall-through
//!   `goto`s. No fusion, no peephole: the bytecode backend must present
//!   the same enabled-action lists, step counts, monitor event streams and
//!   schedules as the tree walker, byte for byte.
//! * **Addresses are dense.** The op at `pc` for block `b`, instruction
//!   `ip` is `block_entry(b) + ip`; a block's terminator sits right after
//!   its last instruction. That makes the `(block, ip)` frame coordinates
//!   the rest of the system reads (the symbolic executor's failure
//!   context, the oracle's assert evaluation) recoverable from a `pc` via
//!   one side-table lookup — see [`CompiledProgram::info`].
//! * **No heap per op.** Variable-length argument lists (`call`, `fork`)
//!   are interned into one shared pool and referenced by [`ArgsRef`]
//!   ranges, keeping [`Op`] `Copy`.

use clap_ir::ast::{BinOp, UnOp};
use clap_ir::{
    AssertId, AtomicOrd, BlockId, ChanId, CondId, FuncId, GlobalId, LocalId, MutexId, Operand,
    Program,
};

/// A pure right-hand side, mirroring [`clap_ir::Rvalue`] but `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rv {
    /// Copy an operand.
    Use(Operand),
    /// Apply a unary operator.
    Unary(UnOp, Operand),
    /// Apply a binary operator.
    Binary(BinOp, Operand, Operand),
}

/// A range into the compiled program's interned argument pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArgsRef {
    /// First operand index.
    pub start: u32,
    /// Number of operands.
    pub len: u32,
}

/// One flat-bytecode instruction. Each variant corresponds 1:1 to an IR
/// instruction or terminator; control flow carries absolute instruction
/// addresses instead of block labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `dst = rvalue`.
    Assign {
        /// Destination slot.
        dst: LocalId,
        /// Computed value.
        rv: Rv,
    },
    /// `dst = global[index?]`.
    Load {
        /// Destination slot.
        dst: LocalId,
        /// Source global.
        global: GlobalId,
        /// Element index for arrays; `None` for scalars.
        index: Option<Operand>,
    },
    /// `global[index?] = src`.
    Store {
        /// Destination global.
        global: GlobalId,
        /// Element index for arrays; `None` for scalars.
        index: Option<Operand>,
        /// Value written.
        src: Operand,
    },
    /// Acquire a mutex.
    Lock(MutexId),
    /// Release a mutex.
    Unlock(MutexId),
    /// Spawn a thread.
    Fork {
        /// Receives the new thread's handle.
        dst: LocalId,
        /// Entry function of the new thread.
        func: FuncId,
        /// Arguments (interned).
        args: ArgsRef,
    },
    /// Block until the named thread exits.
    Join {
        /// Thread handle operand.
        handle: Operand,
    },
    /// Release `mutex`, park on `cond`, reacquire on wakeup.
    Wait {
        /// Condition variable.
        cond: CondId,
        /// Protecting mutex.
        mutex: MutexId,
    },
    /// Wake one waiter.
    Signal(CondId),
    /// Wake all waiters.
    Broadcast(CondId),
    /// Blocking channel send.
    Send {
        /// Destination channel.
        chan: ChanId,
        /// Value sent.
        src: Operand,
    },
    /// Blocking channel receive.
    Recv {
        /// Receives the value (or `-1` when closed and drained).
        dst: LocalId,
        /// Source channel.
        chan: ChanId,
    },
    /// Non-blocking channel send.
    TrySend {
        /// Receives 1 on success, 0 on full/closed.
        dst: LocalId,
        /// Destination channel.
        chan: ChanId,
        /// Value sent.
        src: Operand,
    },
    /// Non-blocking channel receive.
    TryRecv {
        /// Receives the value, or `-1` when nothing was available.
        dst: LocalId,
        /// Source channel.
        chan: ChanId,
    },
    /// Close a channel (idempotent).
    ChanClose(ChanId),
    /// Spawn an actor thread with its own mailbox.
    SpawnActor {
        /// Receives the new actor's handle.
        dst: LocalId,
        /// Entry function of the actor.
        func: FuncId,
        /// Arguments (interned).
        args: ArgsRef,
    },
    /// Append a message to another thread's mailbox.
    MailboxSend {
        /// Thread handle operand.
        target: Operand,
        /// Value sent.
        src: Operand,
    },
    /// Dequeue a message from the executing thread's own mailbox.
    MailboxRecv {
        /// Receives the message.
        dst: LocalId,
    },
    /// `dst = load(atomic, ord)`.
    AtomicLoad {
        /// Receives the loaded value.
        dst: LocalId,
        /// The atomic location.
        global: GlobalId,
        /// Memory ordering.
        ord: AtomicOrd,
    },
    /// `store(atomic, src, ord)`.
    AtomicStore {
        /// The atomic location.
        global: GlobalId,
        /// Value written.
        src: Operand,
        /// Memory ordering.
        ord: AtomicOrd,
    },
    /// `dst = fetch_add(atomic, src, ord)` — `dst` receives the old value.
    AtomicRmw {
        /// Receives the pre-add value.
        dst: LocalId,
        /// The atomic location.
        global: GlobalId,
        /// Addend.
        src: Operand,
        /// Memory ordering.
        ord: AtomicOrd,
    },
    /// `dst = cas(atomic, expected, desired, ord)` — `dst` receives the
    /// old value; the swap happened iff `dst == expected`.
    AtomicCas {
        /// Receives the pre-CAS value.
        dst: LocalId,
        /// The atomic location.
        global: GlobalId,
        /// Compared value.
        expected: Operand,
        /// Value written on success.
        desired: Operand,
        /// Memory ordering.
        ord: AtomicOrd,
    },
    /// Voluntary context-switch point.
    Yield,
    /// Property check.
    Assert {
        /// 0 = failure, nonzero = pass.
        cond: Operand,
        /// Assert site.
        id: AssertId,
    },
    /// Call `func(args…)`.
    Call {
        /// Receives the return value, if used.
        dst: Option<LocalId>,
        /// Callee.
        func: FuncId,
        /// Arguments (interned).
        args: ArgsRef,
    },
    /// Unconditional jump (a lowered `goto`, fall-throughs included).
    Jump {
        /// Absolute target address.
        target: u32,
    },
    /// Two-way branch with both targets pre-resolved.
    Branch {
        /// Condition operand (0 = false).
        cond: Operand,
        /// Address when nonzero.
        then_pc: u32,
        /// Address when zero.
        else_pc: u32,
    },
    /// Return from the current frame.
    Return {
        /// Returned operand, if any.
        value: Option<Operand>,
    },
}

/// Per-function metadata.
#[derive(Debug, Clone, Copy)]
pub struct FuncInfo {
    /// Address of the entry block's first op.
    pub entry: u32,
    /// Local slot count (parameters first).
    pub locals: u32,
}

/// The `(block, ip)` coordinates of one address — how the flat `pc` maps
/// back onto the tree the rest of the pipeline reads.
#[derive(Debug, Clone, Copy)]
pub struct PcInfo {
    /// Enclosing basic block.
    pub block: BlockId,
    /// Instruction index within the block (`instrs.len()` = terminator).
    pub ip: u32,
}

/// A program lowered to flat bytecode. Built once per [`Program`] (see
/// [`crate::compile`]) and shared — cheaply cloneable via `Arc` — by every
/// VM that executes it.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    pub(crate) code: Vec<Op>,
    pub(crate) arg_pool: Vec<Operand>,
    pub(crate) funcs: Vec<FuncInfo>,
    pub(crate) info: Vec<PcInfo>,
    /// Flattened per-function block→address table (the jump table).
    pub(crate) block_entry: Vec<u32>,
    /// Per-function offset into [`CompiledProgram::block_entry`].
    pub(crate) block_base: Vec<u32>,
}

impl CompiledProgram {
    /// Lowers `program`; alias of [`crate::compile::compile`].
    pub fn new(program: &Program) -> Self {
        crate::compile::compile(program)
    }

    /// The op at `pc`.
    #[inline]
    pub fn op(&self, pc: u32) -> Op {
        self.code[pc as usize]
    }

    /// The `(block, ip)` coordinates of `pc`.
    #[inline]
    pub fn info(&self, pc: u32) -> PcInfo {
        self.info[pc as usize]
    }

    /// Function metadata.
    #[inline]
    pub fn func(&self, f: FuncId) -> FuncInfo {
        self.funcs[f.index()]
    }

    /// The absolute address of `(func, block, ip)` — valid for
    /// `ip ≤ instrs.len()` (the terminator's address is one past the last
    /// instruction).
    #[inline]
    pub fn pc_of(&self, func: FuncId, block: BlockId, ip: usize) -> u32 {
        let base = self.block_base[func.index()] as usize;
        self.block_entry[base + block.index()] + ip as u32
    }

    /// The interned operand list of an [`ArgsRef`].
    #[inline]
    pub fn args(&self, r: ArgsRef) -> &[Operand] {
        &self.arg_pool[r.start as usize..(r.start + r.len) as usize]
    }

    /// Total number of ops.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// `true` when the program compiled to no ops (never happens for a
    /// parsed program, which always has a `main` with a terminator).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clap_ir::parse;

    #[test]
    fn ops_are_copy_and_small() {
        // The whole point of the flat layout: fetching an op is a memcpy
        // of a few words, not a pointer chase plus a heap clone.
        fn assert_copy<T: Copy>() {}
        assert_copy::<Op>();
        assert!(
            std::mem::size_of::<Op>() <= 56,
            "Op grew to {} bytes",
            std::mem::size_of::<Op>()
        );
    }

    #[test]
    fn dense_addressing_round_trips() {
        let p = parse(
            "global int x = 0;
             fn f(n: int) { if (n > 0) { x = n; } else { x = 0 - n; } return n; }
             fn main() { let r: int = f(3); }",
        )
        .unwrap();
        let c = CompiledProgram::new(&p);
        assert_eq!(c.len(), c.info.len());
        // Every (func, block, ip) coordinate maps to a pc whose info maps
        // straight back.
        for (fi, f) in p.functions.iter().enumerate() {
            let func = FuncId(fi as u32);
            for (bi, b) in f.blocks.iter().enumerate() {
                let block = BlockId(bi as u32);
                for ip in 0..=b.instrs.len() {
                    let pc = c.pc_of(func, block, ip);
                    let info = c.info(pc);
                    assert_eq!(info.block, block);
                    assert_eq!(info.ip as usize, ip);
                }
            }
        }
    }

    #[test]
    fn one_op_per_instruction_and_terminator() {
        let p = parse(
            "global int x = 0;
             fn main() { let i: int = 0; while (i < 3) { x = x + i; i = i + 1; } }",
        )
        .unwrap();
        let c = CompiledProgram::new(&p);
        let expected: usize = p
            .functions
            .iter()
            .flat_map(|f| f.blocks.iter())
            .map(|b| b.instrs.len() + 1)
            .sum();
        assert_eq!(c.len(), expected, "no fusion, no elision");
    }

    #[test]
    fn jump_targets_land_on_block_entries() {
        let p = parse(
            "global int x = 0;
             fn main() { let i: int = 0; while (i < 3) { i = i + 1; } x = i; }",
        )
        .unwrap();
        let c = CompiledProgram::new(&p);
        for pc in 0..c.len() as u32 {
            match c.op(pc) {
                Op::Jump { target } => assert_eq!(c.info(target).ip, 0),
                Op::Branch {
                    then_pc, else_pc, ..
                } => {
                    assert_eq!(c.info(then_pc).ip, 0);
                    assert_eq!(c.info(else_pc).ip, 0);
                }
                _ => {}
            }
        }
    }
}
