//! A deterministic-given-seed interpreter for [`clap_ir`] programs with
//! pluggable schedulers and **SC / TSO / PSO** store-buffer memory models.
//!
//! This crate is the "hardware + OS" substrate of the CLAP reproduction:
//! where the paper runs PThreads binaries on a real multiprocessor and
//! simulates relaxed-memory effects by controlling load values, this VM
//! implements the store-buffer semantics natively and exposes buffer
//! drains as scheduler-visible events (see [`sched::Action`]). Racy
//! interleavings are explored by sweeping seeds of a
//! [`sched::RandomScheduler`]; instrumentation (the CLAP path recorder,
//! the LEAP baseline) attaches through the zero-cost-when-absent
//! [`monitor::Monitor`] trait.
//!
//! # Example
//!
//! ```
//! use clap_ir::parse;
//! use clap_vm::{run_with_seed, MemModel, NullMonitor};
//!
//! let program = parse(
//!     "global int x = 0;
//!      fn w() { x = x + 1; }
//!      fn main() { let t: thread = fork w(); join t; assert(x == 1); }",
//! )?;
//! let (outcome, stats) = run_with_seed(&program, MemModel::Sc, 42, &mut NullMonitor);
//! assert!(!outcome.is_failure());
//! assert!(stats.instructions > 0);
//! # Ok::<(), clap_ir::Error>(())
//! ```

pub mod bytecode;
pub mod compile;
pub mod mem;
pub mod monitor;
pub mod sched;
pub mod stats;
pub mod thread;
pub mod vm;

pub use bytecode::{CompiledProgram, Op};
pub use mem::{Addr, Layout, MemModel, Memory, StoreBuffer};
pub use monitor::{AccessEvent, CountingMonitor, Monitor, MultiMonitor, NullMonitor, SyncEvent};
pub use sched::{Action, FifoScheduler, FnScheduler, RandomScheduler, Scheduler, ScriptScheduler};
pub use stats::ExecStats;
pub use thread::{Frame, Lineage, Status, Thread, ThreadId};
pub use vm::{
    run_with_seed, Backend, Outcome, SapPreviewKind, SharedSpec, Snapshot, StepPreview,
    StepProfile, Vm,
};
