//! Instrumentation hooks.
//!
//! A [`Monitor`] observes an execution without influencing it (beyond the
//! wall-clock cost of its callbacks, which is exactly what the recording-
//! overhead experiments measure). The CLAP recorder (thread-local paths
//! only) and the LEAP baseline (per-variable access vectors) are both
//! monitors.

use crate::mem::Addr;
use crate::thread::{Lineage, ThreadId};
use clap_ir::{AssertId, BlockId, ChanId, CondId, FuncId, GlobalId, MutexId};

/// A shared-memory access as seen at instruction-execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// The accessed global.
    pub global: GlobalId,
    /// Element offset within the global (0 for scalars).
    pub offset: usize,
    /// Flattened address.
    pub addr: Addr,
    /// `true` for stores.
    pub is_write: bool,
    /// The value read or written.
    pub value: i64,
}

/// A synchronization operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncEvent {
    /// Mutex acquired.
    Lock(MutexId),
    /// Mutex released.
    Unlock(MutexId),
    /// Thread forked (the new thread's id).
    Fork(ThreadId),
    /// Thread joined.
    Join(ThreadId),
    /// Cond wait completed (mutex reacquired).
    Wait(CondId, MutexId),
    /// Cond signalled.
    Signal(CondId),
    /// Cond broadcast.
    Broadcast(CondId),
    /// Channel send completed (value enqueued, or dropped when closed).
    ChanSend(ChanId),
    /// Channel receive completed (value dequeued, or the closed-channel
    /// `-1` sentinel).
    ChanRecv(ChanId),
    /// Non-blocking send executed (`true` = value enqueued).
    ChanTrySend(ChanId, bool),
    /// Non-blocking receive executed (`true` = value dequeued).
    ChanTryRecv(ChanId, bool),
    /// Channel closed (idempotent).
    ChanClose(ChanId),
    /// Actor spawned (the new actor thread's id).
    SpawnActor(ThreadId),
    /// Message appended to the target thread's mailbox (or dropped when
    /// the target had exited).
    MailboxSend(ThreadId),
    /// Message dequeued from the executing thread's own mailbox.
    MailboxRecv,
}

/// Observes VM execution. All methods default to no-ops so monitors
/// implement only what they need.
pub trait Monitor {
    /// A thread came into existence (including main).
    fn on_thread_start(&mut self, _thread: ThreadId, _lineage: &Lineage, _func: FuncId) {}

    /// A thread exited.
    fn on_thread_exit(&mut self, _thread: ThreadId) {}

    /// A function was entered (call or thread start).
    fn on_func_enter(&mut self, _thread: ThreadId, _func: FuncId) {}

    /// A function returned.
    fn on_func_exit(&mut self, _thread: ThreadId, _func: FuncId) {}

    /// Control moved across a CFG edge within `func`.
    fn on_edge(&mut self, _thread: ThreadId, _func: FuncId, _from: BlockId, _to: BlockId) {}

    /// A global-memory access executed (loads: value read; stores: value
    /// that will be written — under TSO/PSO visibility may come later).
    fn on_access(&mut self, _thread: ThreadId, _event: &AccessEvent) {}

    /// A buffered store became globally visible.
    fn on_commit(&mut self, _thread: ThreadId, _addr: Addr, _value: i64) {}

    /// A synchronization operation completed.
    fn on_sync(&mut self, _thread: ThreadId, _event: &SyncEvent) {}

    /// An assert executed.
    fn on_assert(&mut self, _thread: ThreadId, _id: AssertId, _passed: bool) {}
}

/// A monitor that observes nothing: the "native" configuration in the
/// overhead experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullMonitor;

impl Monitor for NullMonitor {}

/// Fans events out to several monitors in order.
#[derive(Default)]
pub struct MultiMonitor<'a> {
    monitors: Vec<&'a mut dyn Monitor>,
}

impl<'a> MultiMonitor<'a> {
    /// Creates an empty fan-out monitor.
    pub fn new() -> Self {
        MultiMonitor {
            monitors: Vec::new(),
        }
    }

    /// Adds a monitor to the fan-out chain.
    pub fn push(&mut self, monitor: &'a mut dyn Monitor) {
        self.monitors.push(monitor);
    }
}

impl std::fmt::Debug for MultiMonitor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MultiMonitor({} monitors)", self.monitors.len())
    }
}

macro_rules! fan_out {
    ($self:ident, $method:ident, $($arg:expr),*) => {
        for m in &mut $self.monitors {
            m.$method($($arg),*);
        }
    };
}

impl Monitor for MultiMonitor<'_> {
    fn on_thread_start(&mut self, thread: ThreadId, lineage: &Lineage, func: FuncId) {
        fan_out!(self, on_thread_start, thread, lineage, func);
    }
    fn on_thread_exit(&mut self, thread: ThreadId) {
        fan_out!(self, on_thread_exit, thread);
    }
    fn on_func_enter(&mut self, thread: ThreadId, func: FuncId) {
        fan_out!(self, on_func_enter, thread, func);
    }
    fn on_func_exit(&mut self, thread: ThreadId, func: FuncId) {
        fan_out!(self, on_func_exit, thread, func);
    }
    fn on_edge(&mut self, thread: ThreadId, func: FuncId, from: BlockId, to: BlockId) {
        fan_out!(self, on_edge, thread, func, from, to);
    }
    fn on_access(&mut self, thread: ThreadId, event: &AccessEvent) {
        fan_out!(self, on_access, thread, event);
    }
    fn on_commit(&mut self, thread: ThreadId, addr: Addr, value: i64) {
        fan_out!(self, on_commit, thread, addr, value);
    }
    fn on_sync(&mut self, thread: ThreadId, event: &SyncEvent) {
        fan_out!(self, on_sync, thread, event);
    }
    fn on_assert(&mut self, thread: ThreadId, id: AssertId, passed: bool) {
        fan_out!(self, on_assert, thread, id, passed);
    }
}

/// A monitor that counts events — handy in tests and as a cheap sanity
/// profile of an execution.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingMonitor {
    /// Threads started.
    pub threads: u64,
    /// Shared accesses observed.
    pub accesses: u64,
    /// Reads among the accesses.
    pub reads: u64,
    /// Sync operations observed.
    pub syncs: u64,
    /// CFG edges traversed.
    pub edges: u64,
    /// Function entries.
    pub calls: u64,
    /// Asserts executed.
    pub asserts: u64,
    /// Store commits (drains) observed.
    pub commits: u64,
}

impl Monitor for CountingMonitor {
    fn on_thread_start(&mut self, _: ThreadId, _: &Lineage, _: FuncId) {
        self.threads += 1;
    }
    fn on_func_enter(&mut self, _: ThreadId, _: FuncId) {
        self.calls += 1;
    }
    fn on_edge(&mut self, _: ThreadId, _: FuncId, _: BlockId, _: BlockId) {
        self.edges += 1;
    }
    fn on_access(&mut self, _: ThreadId, event: &AccessEvent) {
        self.accesses += 1;
        if !event.is_write {
            self.reads += 1;
        }
    }
    fn on_commit(&mut self, _: ThreadId, _: Addr, _: i64) {
        self.commits += 1;
    }
    fn on_sync(&mut self, _: ThreadId, _: &SyncEvent) {
        self.syncs += 1;
    }
    fn on_assert(&mut self, _: ThreadId, _: AssertId, _: bool) {
        self.asserts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_monitor_fans_out() {
        let mut a = CountingMonitor::default();
        let mut b = CountingMonitor::default();
        {
            let mut multi = MultiMonitor::new();
            multi.push(&mut a);
            multi.push(&mut b);
            multi.on_sync(ThreadId(0), &SyncEvent::Signal(CondId(0)));
            multi.on_assert(ThreadId(0), AssertId(0), true);
        }
        assert_eq!(a.syncs, 1);
        assert_eq!(b.asserts, 1);
    }

    #[test]
    fn counting_monitor_distinguishes_reads() {
        let mut c = CountingMonitor::default();
        let ev = AccessEvent {
            global: GlobalId(0),
            offset: 0,
            addr: Addr(0),
            is_write: false,
            value: 3,
        };
        c.on_access(ThreadId(0), &ev);
        c.on_access(
            ThreadId(0),
            &AccessEvent {
                is_write: true,
                ..ev
            },
        );
        assert_eq!(c.accesses, 2);
        assert_eq!(c.reads, 1);
    }
}
