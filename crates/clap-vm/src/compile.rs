//! Lowering from the CFG [`Program`] to flat bytecode.
//!
//! Two passes per function: the first lays out block start addresses (each
//! block occupies `instrs.len() + 1` slots — its instructions followed by
//! exactly one terminator op), the second emits ops with every `goto` /
//! `branch` target rewritten to the absolute address from the first pass.
//! Argument vectors of `call` / `fork` are interned into one shared pool so
//! the emitted [`Op`]s stay `Copy`.

use crate::bytecode::{ArgsRef, CompiledProgram, FuncInfo, Op, PcInfo, Rv};
use clap_ir::{BlockId, Instr, Operand, Program, Rvalue, Terminator};

/// Lowers `program` into a [`CompiledProgram`].
pub fn compile(program: &Program) -> CompiledProgram {
    let total_ops: usize = program
        .functions
        .iter()
        .flat_map(|f| f.blocks.iter())
        .map(|b| b.instrs.len() + 1)
        .sum();
    let mut code = Vec::with_capacity(total_ops);
    let mut info = Vec::with_capacity(total_ops);
    let mut arg_pool = Vec::new();
    let mut funcs = Vec::with_capacity(program.functions.len());
    let mut block_entry: Vec<u32> = Vec::new();
    let mut block_base = Vec::with_capacity(program.functions.len());

    for f in &program.functions {
        let base = block_entry.len();
        block_base.push(base as u32);

        // Pass 1: block start addresses.
        let mut next = code.len() as u32;
        for b in &f.blocks {
            block_entry.push(next);
            next += b.instrs.len() as u32 + 1;
        }
        funcs.push(FuncInfo {
            entry: block_entry[base + f.entry.index()],
            locals: f.locals.len() as u32,
        });

        // Pass 2: emit ops with targets resolved against pass 1.
        let target = |b: BlockId| block_entry[base + b.index()];
        for (bi, b) in f.blocks.iter().enumerate() {
            let block = BlockId(bi as u32);
            for (ip, instr) in b.instrs.iter().enumerate() {
                info.push(PcInfo {
                    block,
                    ip: ip as u32,
                });
                code.push(lower_instr(instr, &mut arg_pool));
            }
            info.push(PcInfo {
                block,
                ip: b.instrs.len() as u32,
            });
            code.push(match &b.term {
                Terminator::Goto(t) => Op::Jump { target: target(*t) },
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => Op::Branch {
                    cond: *cond,
                    then_pc: target(*then_bb),
                    else_pc: target(*else_bb),
                },
                Terminator::Return(value) => Op::Return { value: *value },
            });
        }
    }

    CompiledProgram {
        code,
        arg_pool,
        funcs,
        info,
        block_entry,
        block_base,
    }
}

fn lower_instr(instr: &Instr, arg_pool: &mut Vec<Operand>) -> Op {
    match instr {
        Instr::Assign { dst, rv } => Op::Assign {
            dst: *dst,
            rv: lower_rvalue(rv),
        },
        Instr::Load { dst, global, index } => Op::Load {
            dst: *dst,
            global: *global,
            index: *index,
        },
        Instr::Store { global, index, src } => Op::Store {
            global: *global,
            index: *index,
            src: *src,
        },
        Instr::Lock(m) => Op::Lock(*m),
        Instr::Unlock(m) => Op::Unlock(*m),
        Instr::Fork { dst, func, args } => Op::Fork {
            dst: *dst,
            func: *func,
            args: intern(args, arg_pool),
        },
        Instr::Join { handle } => Op::Join { handle: *handle },
        Instr::Wait { cond, mutex } => Op::Wait {
            cond: *cond,
            mutex: *mutex,
        },
        Instr::Signal(c) => Op::Signal(*c),
        Instr::Broadcast(c) => Op::Broadcast(*c),
        Instr::Send { chan, src } => Op::Send {
            chan: *chan,
            src: *src,
        },
        Instr::Recv { dst, chan } => Op::Recv {
            dst: *dst,
            chan: *chan,
        },
        Instr::TrySend { dst, chan, src } => Op::TrySend {
            dst: *dst,
            chan: *chan,
            src: *src,
        },
        Instr::TryRecv { dst, chan } => Op::TryRecv {
            dst: *dst,
            chan: *chan,
        },
        Instr::ChanClose(c) => Op::ChanClose(*c),
        Instr::SpawnActor { dst, func, args } => Op::SpawnActor {
            dst: *dst,
            func: *func,
            args: intern(args, arg_pool),
        },
        Instr::MailboxSend { target, src } => Op::MailboxSend {
            target: *target,
            src: *src,
        },
        Instr::MailboxRecv { dst } => Op::MailboxRecv { dst: *dst },
        Instr::AtomicLoad { dst, global, ord } => Op::AtomicLoad {
            dst: *dst,
            global: *global,
            ord: *ord,
        },
        Instr::AtomicStore { global, src, ord } => Op::AtomicStore {
            global: *global,
            src: *src,
            ord: *ord,
        },
        Instr::AtomicRmw {
            dst,
            global,
            src,
            ord,
        } => Op::AtomicRmw {
            dst: *dst,
            global: *global,
            src: *src,
            ord: *ord,
        },
        Instr::AtomicCas {
            dst,
            global,
            expected,
            desired,
            ord,
        } => Op::AtomicCas {
            dst: *dst,
            global: *global,
            expected: *expected,
            desired: *desired,
            ord: *ord,
        },
        Instr::Yield => Op::Yield,
        Instr::Assert { cond, id } => Op::Assert {
            cond: *cond,
            id: *id,
        },
        Instr::Call { dst, func, args } => Op::Call {
            dst: *dst,
            func: *func,
            args: intern(args, arg_pool),
        },
    }
}

fn lower_rvalue(rv: &Rvalue) -> Rv {
    match rv {
        Rvalue::Use(op) => Rv::Use(*op),
        Rvalue::Unary(un, op) => Rv::Unary(*un, *op),
        Rvalue::Binary(bin, a, b) => Rv::Binary(*bin, *a, *b),
    }
}

fn intern(args: &[Operand], pool: &mut Vec<Operand>) -> ArgsRef {
    let start = pool.len() as u32;
    pool.extend_from_slice(args);
    ArgsRef {
        start,
        len: args.len() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clap_ir::parse;

    #[test]
    fn entry_points_at_entry_block() {
        let p = parse(
            "global int x = 0;
             fn w(a: int, b: int) { x = a + b; }
             fn main() { let t: thread = fork w(1, 2); join t; }",
        )
        .unwrap();
        let c = compile(&p);
        for (fi, f) in p.functions.iter().enumerate() {
            let func = clap_ir::FuncId(fi as u32);
            let meta = c.func(func);
            assert_eq!(meta.entry, c.pc_of(func, f.entry, 0));
            assert_eq!(meta.locals as usize, f.locals.len());
        }
    }

    #[test]
    fn fork_args_interned_in_order() {
        let p = parse(
            "global int x = 0;
             fn w(a: int, b: int) { x = a + b; }
             fn main() { let t: thread = fork w(4, 9); join t; }",
        )
        .unwrap();
        let c = compile(&p);
        let fork = (0..c.len() as u32)
            .map(|pc| c.op(pc))
            .find_map(|op| match op {
                Op::Fork { args, .. } => Some(args),
                _ => None,
            })
            .expect("fork op exists");
        assert_eq!(
            c.args(fork),
            &[Operand::Const(4), Operand::Const(9)],
            "argument order preserved in the pool"
        );
    }
}
