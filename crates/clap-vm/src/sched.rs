//! Scheduling: the VM exposes its enabled actions each step and a
//! [`Scheduler`] picks one.
//!
//! An [`Action`] is either stepping a runnable thread by one instruction or
//! draining one buffered store to memory (TSO/PSO only). Making drains
//! schedulable is what lets relaxed-memory reorderings — and the bugs they
//! cause — arise organically during exploration and be pinned down exactly
//! during replay.

use crate::mem::Addr;
use crate::thread::ThreadId;
use crate::vm::Vm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One schedulable step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Execute the next instruction (or terminator) of a runnable thread.
    Step(ThreadId),
    /// Commit the oldest buffered store to `addr` by the thread.
    Drain(ThreadId, Addr),
}

impl Action {
    /// The thread the action belongs to.
    pub fn thread(&self) -> ThreadId {
        match self {
            Action::Step(t) | Action::Drain(t, _) => *t,
        }
    }
}

/// Picks the next action from the enabled set.
pub trait Scheduler {
    /// Chooses an index into `actions` (guaranteed non-empty).
    fn pick(&mut self, vm: &Vm<'_>, actions: &[Action]) -> usize;
}

/// A seeded random scheduler.
///
/// With probability `stickiness` it keeps driving the thread it drove last
/// step (when that thread still has an enabled action); otherwise it picks
/// uniformly. Low stickiness yields fine-grained interleaving; high
/// stickiness yields long sequential bursts — sweeping seeds across both
/// regimes is how buggy interleavings are found, standing in for the
/// paper's manually inserted timing delays.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: StdRng,
    stickiness: f64,
    last: Option<ThreadId>,
}

impl RandomScheduler {
    /// Creates a scheduler from a seed with the default stickiness (0.9).
    pub fn new(seed: u64) -> Self {
        Self::with_stickiness(seed, 0.9)
    }

    /// Creates a scheduler with an explicit stickiness in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `stickiness` is not in `[0, 1]`.
    pub fn with_stickiness(seed: u64, stickiness: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&stickiness),
            "stickiness must be in [0, 1]"
        );
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
            stickiness,
            last: None,
        }
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, _vm: &Vm<'_>, actions: &[Action]) -> usize {
        debug_assert!(!actions.is_empty());
        if let Some(last) = self.last {
            if self.rng.gen_bool(self.stickiness) {
                if let Some(i) = actions
                    .iter()
                    .position(|a| matches!(a, Action::Step(t) if *t == last))
                {
                    return i;
                }
            }
        }
        let i = self.rng.gen_range(0..actions.len());
        self.last = Some(actions[i].thread());
        i
    }
}

/// A scheduler that always picks the first enabled action: deterministic,
/// mostly-sequential execution (useful as a fast smoke-test schedule).
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn pick(&mut self, _vm: &Vm<'_>, _actions: &[Action]) -> usize {
        0
    }
}

/// The chooser hook for enumeration tools: replays a fixed sequence of
/// decision indices against the VM's (deterministically ordered)
/// [`Vm::enabled_actions`] list, one index per scheduler step.
///
/// This is how the bounded model checker (`clap-check`) re-executes one
/// enumerated interleaving — including its buffer-drain choices — exactly:
/// the `k`-th entry names which enabled action the `k`-th step takes. Once
/// the script runs out (or an entry is out of range, which means the script
/// was recorded against a different program or model), the scheduler falls
/// back to the first action and latches [`ScriptScheduler::overran`].
#[derive(Debug, Clone)]
pub struct ScriptScheduler {
    choices: Vec<u32>,
    pos: usize,
    overran: bool,
}

impl ScriptScheduler {
    /// A scheduler that will follow `choices` step by step.
    pub fn new(choices: Vec<u32>) -> Self {
        ScriptScheduler {
            choices,
            pos: 0,
            overran: false,
        }
    }

    /// How many scripted decisions have been consumed.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// `true` when the run needed more decisions than the script held, or
    /// a scripted index did not exist in the enabled-action list — the
    /// execution diverged from the recorded one.
    pub fn overran(&self) -> bool {
        self.overran
    }
}

impl Scheduler for ScriptScheduler {
    fn pick(&mut self, _vm: &Vm<'_>, actions: &[Action]) -> usize {
        let Some(&choice) = self.choices.get(self.pos) else {
            self.overran = true;
            return 0;
        };
        self.pos += 1;
        let i = choice as usize;
        if i < actions.len() {
            i
        } else {
            self.overran = true;
            0
        }
    }
}

/// Adapts a closure into a [`Scheduler`] — the lightweight way for a tool
/// to drive scheduling and drain nondeterminism without a named type.
#[derive(Debug)]
pub struct FnScheduler<F>(pub F);

impl<F: FnMut(&Vm<'_>, &[Action]) -> usize> Scheduler for FnScheduler<F> {
    fn pick(&mut self, vm: &Vm<'_>, actions: &[Action]) -> usize {
        (self.0)(vm, actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_thread_accessor() {
        assert_eq!(Action::Step(ThreadId(3)).thread(), ThreadId(3));
        assert_eq!(Action::Drain(ThreadId(1), Addr(0)).thread(), ThreadId(1));
    }

    #[test]
    #[should_panic(expected = "stickiness")]
    fn stickiness_validated() {
        let _ = RandomScheduler::with_stickiness(0, 1.5);
    }
}
