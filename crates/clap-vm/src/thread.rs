//! Thread state: call frames, lineage-based canonical identity, run status.

use clap_ir::{BlockId, ChanId, CondId, FuncId, LocalId, MutexId};
use std::fmt;

/// A dense runtime thread identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The main thread's id.
    pub const MAIN: ThreadId = ThreadId(0);

    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<usize> for ThreadId {
    fn from(i: usize) -> Self {
        ThreadId(i as u32)
    }
}

/// The canonical, schedule-independent identity of a thread: the chain of
/// fork ordinals from the main thread, following the paper's `t_{i:j}`
/// scheme (§3.2): main is `0`, main's second forked child is `0.2`, that
/// child's first fork is `0.2.1`, and so on.
///
/// Because each thread forks its children in program order, a lineage names
/// the same logical thread in every interleaving, which is what lets path
/// logs recorded in one execution drive replay in another.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lineage(Vec<u32>);

impl Lineage {
    /// The main thread's lineage.
    pub fn main() -> Self {
        Lineage(vec![0])
    }

    /// The lineage of this thread's `ordinal`-th forked child (1-based).
    pub fn child(&self, ordinal: u32) -> Self {
        let mut v = self.0.clone();
        v.push(ordinal);
        Lineage(v)
    }

    /// The raw ordinal chain.
    pub fn components(&self) -> &[u32] {
        &self.0
    }

    /// Rebuilds a lineage from a raw ordinal chain (see
    /// [`Lineage::components`]).
    pub fn from_components(components: &[u32]) -> Self {
        Lineage(components.to_vec())
    }

    /// Overwrites this lineage in place without reallocating when capacity
    /// suffices — the snapshot-restore fast path.
    pub fn assign(&mut self, components: &[u32]) {
        self.0.clear();
        self.0.extend_from_slice(components);
    }
}

impl fmt::Display for Lineage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|c| c.to_string()).collect();
        write!(f, "{}", parts.join("."))
    }
}

/// One activation record.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The executing function.
    pub func: FuncId,
    /// Local slots (parameters first), zero-initialized.
    pub locals: Vec<i64>,
    /// Current block.
    pub block: BlockId,
    /// Index of the next instruction within the block.
    pub ip: usize,
    /// Where the caller wants the return value, if anywhere.
    pub ret_dst: Option<LocalId>,
    /// Flat-bytecode address of the next op (see [`crate::bytecode`]).
    /// Maintained only by the bytecode backend; the tree walker leaves it
    /// untouched, and snapshot restore re-derives it from
    /// `(func, block, ip)`.
    pub pc: u32,
}

impl Frame {
    /// Creates a frame at the entry of `func` with the given arguments.
    pub fn new(func: FuncId, entry: BlockId, locals_len: usize, args: &[i64]) -> Self {
        let mut locals = vec![0i64; locals_len];
        locals[..args.len()].copy_from_slice(args);
        Frame {
            func,
            locals,
            block: entry,
            ip: 0,
            ret_dst: None,
            pc: 0,
        }
    }
}

/// Why a thread is not currently runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Ready to execute.
    Runnable,
    /// Waiting to acquire a mutex (initial acquisition or cond-wait
    /// reacquisition).
    BlockedLock(MutexId),
    /// Waiting for another thread to exit.
    BlockedJoin(ThreadId),
    /// Parked on a condition variable (pre-signal).
    BlockedWait(CondId),
    /// Parked on a `send` to a full (or, for capacity 0, receiver-less)
    /// channel.
    BlockedSend(ChanId),
    /// Parked on a `recv` from an empty, still-open channel.
    BlockedRecv(ChanId),
    /// Parked on a `mailbox_recv` with an empty mailbox.
    BlockedMailbox,
    /// Finished.
    Exited,
}

/// The complete state of one simulated thread.
#[derive(Debug, Clone)]
pub struct Thread {
    /// Dense runtime id.
    pub id: ThreadId,
    /// Canonical identity.
    pub lineage: Lineage,
    /// Call stack; empty iff the thread has exited.
    pub frames: Vec<Frame>,
    /// Run status.
    pub status: Status,
    /// Number of children forked so far (for child lineage ordinals).
    pub forks: u32,
    /// Program-order index of the *next* shared access point this thread
    /// executes (counts shared loads/stores/sync operations).
    pub next_sap_index: u64,
    /// The mutex a `wait` must reacquire once signalled, plus the resume
    /// point semantics: when set, a successful lock acquisition completes
    /// the pending `wait` instead of a `lock` instruction.
    pub waiting_reacquire: Option<MutexId>,
}

impl Thread {
    /// Creates a runnable thread with a single frame.
    pub fn new(id: ThreadId, lineage: Lineage, frame: Frame) -> Self {
        Thread {
            id,
            lineage,
            frames: vec![frame],
            status: Status::Runnable,
            forks: 0,
            next_sap_index: 0,
            waiting_reacquire: None,
        }
    }

    /// The active frame.
    ///
    /// # Panics
    ///
    /// Panics if the thread has exited.
    pub fn frame(&self) -> &Frame {
        self.frames.last().expect("thread has a frame")
    }

    /// The active frame, mutably.
    ///
    /// # Panics
    ///
    /// Panics if the thread has exited.
    pub fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("thread has a frame")
    }

    /// `true` when the thread can be stepped.
    pub fn is_runnable(&self) -> bool {
        self.status == Status::Runnable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineage_scheme_matches_paper() {
        let main = Lineage::main();
        assert_eq!(main.to_string(), "0");
        let second_child = main.child(2);
        assert_eq!(second_child.to_string(), "0.2");
        assert_eq!(second_child.child(1).to_string(), "0.2.1");
        assert_eq!(second_child.components(), &[0, 2]);
    }

    #[test]
    fn lineage_ordering_is_stable() {
        let main = Lineage::main();
        assert!(main.child(1) < main.child(2));
        assert!(main < main.child(1));
    }

    #[test]
    fn frame_initializes_args() {
        let f = Frame::new(FuncId(0), BlockId(0), 4, &[7, 8]);
        assert_eq!(f.locals, vec![7, 8, 0, 0]);
    }

    #[test]
    fn thread_runnable_lifecycle() {
        let mut t = Thread::new(
            ThreadId::MAIN,
            Lineage::main(),
            Frame::new(FuncId(0), BlockId(0), 0, &[]),
        );
        assert!(t.is_runnable());
        t.status = Status::BlockedJoin(ThreadId(1));
        assert!(!t.is_runnable());
    }
}
