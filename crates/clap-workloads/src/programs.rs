//! The DSL sources of the eleven evaluated workloads.
//!
//! Each models the sharing structure and the bug of the corresponding
//! subject in the paper's evaluation (§6), scaled to interpreter-friendly
//! sizes. See DESIGN.md's workload table for the mapping.

/// sim_race — the simple racey program of \[16\]: several workers hammer two
/// shared counters with unprotected read-modify-writes.
pub fn sim_race() -> String {
    r#"
    global int x = 0;
    global int y = 0;

    fn w() {
        let a: int = x;
        yield;
        x = a + 1;
        let b: int = y;
        yield;
        y = b + 1;
    }

    fn main() {
        let t1: thread = fork w();
        let t2: thread = fork w();
        let t3: thread = fork w();
        let t4: thread = fork w();
        join t1; join t2; join t3; join t4;
        assert(x == 4 && y == 4, "sim_race: lost update");
    }
    "#
    .to_owned()
}

/// pbzip2 — the order-violation bug: the main thread "destroys" the queue
/// mutex (modelled by the `mu_valid` flag) while consumer threads still
/// use it.
pub fn pbzip2(blocks_per_consumer: u32) -> String {
    let n = blocks_per_consumer;
    let total = 2 * n;
    format!(
        r#"
    global int queue[8];
    global int head = 0;
    global int tail = 0;
    global int mu_valid = 1;
    mutex m;
    cond notempty;

    fn consumer(n: int) {{
        let i: int = 0;
        while (i < n) {{
            let ok: int = mu_valid;
            assert(ok == 1, "pbzip2: mutex destroyed while consumers are using it");
            lock(m);
            while (head == tail) {{ wait(notempty, m); }}
            let v: int = queue[head & 7];
            head = head + 1;
            unlock(m);
            i = i + v - v + 1;
        }}
    }}

    fn main() {{
        let c1: thread = fork consumer({n});
        let c2: thread = fork consumer({n});
        let i: int = 0;
        while (i < {total}) {{
            lock(m);
            queue[tail & 7] = i + 1;
            tail = tail + 1;
            signal(notempty);
            unlock(m);
            i = i + 1;
        }}
        mu_valid = 0;
        join c1;
        join c2;
    }}
    "#
    )
}

/// aget — unsynchronized progress accounting across downloader threads.
pub fn aget(chunks: u32) -> String {
    let expected = 3 * chunks * 100;
    format!(
        r#"
    global int bwritten = 0;
    global int offsets[4];

    fn dl(id: int, n: int) {{
        let i: int = 0;
        while (i < n) {{
            let b: int = bwritten;
            yield;
            bwritten = b + 100;
            offsets[id & 3] = i * 100;
            i = i + 1;
        }}
    }}

    fn main() {{
        let d1: thread = fork dl(1, {chunks});
        let d2: thread = fork dl(2, {chunks});
        let d3: thread = fork dl(3, {chunks});
        join d1; join d2; join d3;
        assert(bwritten == {expected}, "aget: progress counter lost an update");
    }}
    "#
    )
}

/// bbuf — a bounded buffer whose consumer uses `if` instead of `while`
/// around the cond wait: a woken consumer can find the buffer already
/// drained by a sibling that never slept.
pub fn bbuf() -> String {
    r#"
    global int buf[4];
    global int count = 0;
    mutex m;
    cond notempty;
    cond notfull;

    fn producer(n: int) {
        let i: int = 0;
        while (i < n) {
            lock(m);
            while (count == 4) { wait(notfull, m); }
            buf[count & 3] = i + 1;
            count = count + 1;
            signal(notempty);
            unlock(m);
            i = i + 1;
        }
    }

    fn consumer() {
        lock(m);
        if (count == 0) { wait(notempty, m); }
        let c: int = count;
        assert(c > 0, "bbuf: woken consumer found an empty buffer");
        count = c - 1;
        signal(notfull);
        unlock(m);
    }

    fn main() {
        let c1: thread = fork consumer();
        let c2: thread = fork consumer();
        let p: thread = fork producer(1);
        join p;
        lock(m);
        count = count + 1;
        signal(notempty);
        unlock(m);
        join c1;
        join c2;
    }
    "#
    .to_owned()
}

/// swarm — parallel sort: workers sort disjoint chunks of a shared array,
/// then race on the shared completion counter.
pub fn swarm(chunk: u32) -> String {
    let len = 2 * chunk;
    format!(
        r#"
    global int data[{len}];
    global int nfinished = 0;

    fn sort_chunk(base: int, len: int) {{
        let i: int = 0;
        while (i < len) {{
            let j: int = 0;
            while (j < len - 1) {{
                let a: int = data[base + j];
                let b: int = data[base + j + 1];
                if (a > b) {{
                    data[base + j] = b;
                    data[base + j + 1] = a;
                }}
                j = j + 1;
            }}
            i = i + 1;
        }}
        let nf: int = nfinished;
        yield;
        nfinished = nf + 1;
    }}

    fn main() {{
        let i: int = 0;
        while (i < {len}) {{
            data[i] = {len} - i;
            i = i + 1;
        }}
        let w1: thread = fork sort_chunk(0, {chunk});
        let w2: thread = fork sort_chunk({chunk}, {chunk});
        join w1;
        join w2;
        assert(nfinished == 2, "swarm: completion counter raced");
    }}
    "#
    )
}

/// pfscan — a parallel scanner pulling work items off a locked queue and
/// racing on the shared `matches` counter.
pub fn pfscan(items: u32) -> String {
    let half = items / 2;
    format!(
        r#"
    global int work[{items}];
    global int next = 0;
    global int matches = 0;
    mutex m;

    fn scanner() {{
        let going: int = 1;
        while (going == 1) {{
            lock(m);
            let i: int = next;
            if (i >= {items}) {{
                unlock(m);
                going = 0;
            }} else {{
                next = i + 1;
                unlock(m);
                let v: int = work[i];
                if (v == 1) {{
                    let mm: int = matches;
                    yield;
                    matches = mm + 1;
                }}
            }}
        }}
    }}

    fn main() {{
        let i: int = 0;
        while (i < {items}) {{
            if (i % 2 == 0) {{ work[i] = 1; }} else {{ work[i] = 0; }}
            i = i + 1;
        }}
        let s1: thread = fork scanner();
        let s2: thread = fork scanner();
        join s1;
        join s2;
        assert(matches == {half}, "pfscan: match counter raced");
    }}
    "#
    )
}

/// apache — bug #45605's multi-variable atomicity violation between
/// listeners and workers on the shared queue bookkeeping.
pub fn apache(items_per_listener: u32, workers: u32) -> String {
    assert!((2..=3).contains(&workers), "model supports 2-3 workers");
    let per_worker = (2 * items_per_listener) / workers;
    let w3 = if workers == 3 {
        format!("let w3: thread = fork worker({per_worker});\n        ")
    } else {
        String::new()
    };
    let j3 = if workers == 3 {
        "join w3;\n        "
    } else {
        ""
    };
    format!(
        r#"
    global int queue_len = 0;
    global int idlers = 0;
    mutex m;
    cond more;

    fn listener(n: int) {{
        let i: int = 0;
        while (i < n) {{
            lock(m);
            queue_len = queue_len + 1;
            signal(more);
            unlock(m);
            i = i + 1;
        }}
    }}

    fn worker(n: int) {{
        let i: int = 0;
        while (i < n) {{
            lock(m);
            idlers = idlers + 1;
            while (queue_len == 0) {{ wait(more, m); }}
            idlers = idlers - 1;
            unlock(m);
            let q: int = queue_len;
            yield;
            queue_len = q - 1;
            i = i + 1;
        }}
    }}

    fn main() {{
        let l1: thread = fork listener({items_per_listener});
        let l2: thread = fork listener({items_per_listener});
        let w1: thread = fork worker({per_worker});
        let w2: thread = fork worker({per_worker});
        {w3}join l1;
        join l2;
        join w1;
        join w2;
        {j3}let q: int = queue_len;
        let id: int = idlers;
        assert(q == 0 && id == 0, "apache: queue bookkeeping corrupted");
    }}
    "#
    )
}

/// racey — the deterministic-replay stress benchmark \[38\]: threads mix a
/// shared signature array at data-dependent indices; the final signature
/// is extremely schedule-sensitive. `expected` is the signature of the
/// recorded buggy run's *absence* — the assert compares against the value
/// a reference (serial) execution computes so racy interleavings fail it.
pub fn racey(iters: u32, expected: i64) -> String {
    format!(
        r#"
    global int sig[8];
    global int started = 0;

    fn mix(id: int, iters: int) {{
        started = started + 1;
        let i: int = 0;
        while (i < iters) {{
            let a: int = sig[i & 7];
            let b: int = sig[(i + id) & 7];
            sig[(a + b) & 7] = a + b * 31 + id;
            i = i + 1;
        }}
    }}

    fn main() {{
        let i: int = 0;
        while (i < 8) {{
            sig[i] = i + 1;
            i = i + 1;
        }}
        let t1: thread = fork mix(1, {iters});
        let t2: thread = fork mix(2, {iters});
        join t1;
        join t2;
        let s: int = 0;
        i = 0;
        while (i < 8) {{
            let v: int = sig[i];
            s = s * 17 + v;
            i = i + 1;
        }}
        assert(s == {expected}, "racey: schedule-dependent signature diverged");
    }}
    "#
    )
}

/// The racey skeleton with a placeholder signature; used to compute the
/// reference signature before baking it in via [`racey`].
pub fn racey_reference(iters: u32) -> String {
    racey(iters, 0)
}

/// dekker — Dekker's mutual-exclusion algorithm: correct under SC, broken
/// by store buffering under TSO/PSO. Each thread enters the critical
/// section `iters` times and increments an unprotected counter there.
pub fn dekker(iters: u32) -> String {
    let expected = 2 * iters;
    format!(
        r#"
    global int flag0 = 0;
    global int flag1 = 0;
    global int turn = 0;
    global int counter = 0;

    fn t0(iters: int) {{
        let i: int = 0;
        while (i < iters) {{
            flag0 = 1;
            while (flag1 == 1) {{
                if (turn != 0) {{
                    flag0 = 0;
                    while (turn != 0) {{ yield; }}
                    flag0 = 1;
                }} else {{ yield; }}
            }}
            let c: int = counter;
            counter = c + 1;
            turn = 1;
            flag0 = 0;
            i = i + 1;
        }}
    }}

    fn t1(iters: int) {{
        let i: int = 0;
        while (i < iters) {{
            flag1 = 1;
            while (flag0 == 1) {{
                if (turn != 1) {{
                    flag1 = 0;
                    while (turn != 1) {{ yield; }}
                    flag1 = 1;
                }} else {{ yield; }}
            }}
            let c: int = counter;
            counter = c + 1;
            turn = 0;
            flag1 = 0;
            i = i + 1;
        }}
    }}

    fn main() {{
        let a: thread = fork t0({iters});
        let b: thread = fork t1({iters});
        join a;
        join b;
        assert(counter == {expected}, "dekker: mutual exclusion violated");
    }}
    "#
    )
}

/// peterson — Peterson's algorithm, same failure mode as Dekker under
/// relaxed memory.
pub fn peterson(iters: u32) -> String {
    let expected = 2 * iters;
    format!(
        r#"
    global int flag0 = 0;
    global int flag1 = 0;
    global int victim = 0;
    global int counter = 0;

    fn t0(iters: int) {{
        let i: int = 0;
        while (i < iters) {{
            flag0 = 1;
            victim = 0;
            while (flag1 == 1 && victim == 0) {{ yield; }}
            let c: int = counter;
            counter = c + 1;
            flag0 = 0;
            i = i + 1;
        }}
    }}

    fn t1(iters: int) {{
        let i: int = 0;
        while (i < iters) {{
            flag1 = 1;
            victim = 1;
            while (flag0 == 1 && victim == 1) {{ yield; }}
            let c: int = counter;
            counter = c + 1;
            flag1 = 0;
            i = i + 1;
        }}
    }}

    fn main() {{
        let a: thread = fork t0({iters});
        let b: thread = fork t1({iters});
        join a;
        join b;
        assert(counter == {expected}, "peterson: mutual exclusion violated");
    }}
    "#
    )
}

/// bakery — Lamport's bakery algorithm with `workers` participants, each
/// entering the critical section once. The unfenced ticket publication
/// breaks under store buffering.
pub fn bakery(workers: u32) -> String {
    assert!((2..=4).contains(&workers));
    let forks: String = (0..workers)
        .map(|i| format!("let w{i}: thread = fork worker({i});\n        "))
        .collect();
    let joins: String = (0..workers)
        .map(|i| format!("join w{i};\n        "))
        .collect();
    format!(
        r#"
    global int choosing[{workers}];
    global int number[{workers}];
    global int counter = 0;

    fn worker(id: int) {{
        choosing[id] = 1;
        let max: int = 0;
        let j: int = 0;
        while (j < {workers}) {{
            let nj: int = number[j];
            if (nj > max) {{ max = nj; }}
            j = j + 1;
        }}
        number[id] = max + 1;
        choosing[id] = 0;
        j = 0;
        while (j < {workers}) {{
            if (j != id) {{
                while (choosing[j] == 1) {{ yield; }}
                let waiting: int = 1;
                while (waiting == 1) {{
                    let nj: int = number[j];
                    if (nj == 0) {{ waiting = 0; }} else {{
                        let ni: int = number[id];
                        if (nj > ni) {{ waiting = 0; }} else {{
                            if (nj == ni && j > id) {{ waiting = 0; }} else {{ yield; }}
                        }}
                    }}
                }}
            }}
            j = j + 1;
        }}
        let c: int = counter;
        counter = c + 1;
        number[id] = 0;
    }}

    fn main() {{
        {forks}{joins}assert(counter == {workers}, "bakery: mutual exclusion violated");
    }}
    "#
    )
}

/// figure2 — the paper's running example (Figure 2), reconstructed in
/// spirit: two threads over `x` and `y`; `assert1` is violable by an SC
/// interleaving, while `assert2` requires the PSO write reordering of the
/// two stores in `t1`.
pub fn figure2() -> String {
    r#"
    global int x = 0;
    global int y = 0;

    fn t1() {
        let a: int = x;
        y = a + 1;
        let b: int = y;
        if (b > 0) {
            x = b + 1;
            y = b;
        }
    }

    fn t2() {
        let c: int = x;
        if (c > 0) {
            y = c + 1;
            x = c;
        }
        let d: int = x;
        let e: int = y;
        assert(d <= e + 1, "assert2: needs PSO write reordering");
    }

    fn main() {
        let u: thread = fork t1();
        let v: thread = fork t2();
        join u;
        join v;
        let fx: int = x;
        let fy: int = y;
        assert(fx + fy < 5, "assert1: SC interleaving");
    }
    "#
    .to_owned()
}

/// A *correct* mutex-protected counter for exploration-scaling
/// measurements: two workers each take the lock `iters` times, so the
/// assert never fails and every exploration sweep runs its full seed
/// budget — exactly the worst case for the record-phase worker pool.
/// Kept deliberately small so a single seed costs microseconds and
/// budgets of 10⁵–10⁶ seeds stay benchable.
pub fn scaling_mutex(iters: u32) -> String {
    let total = 2 * iters;
    format!(
        r#"
    global int counter = 0;
    mutex m;

    fn w(iters: int) {{
        let i: int = 0;
        while (i < iters) {{
            lock(m);
            let c: int = counter;
            counter = c + 1;
            unlock(m);
            i = i + 1;
        }}
    }}

    fn main() {{
        let a: thread = fork w({iters});
        let b: thread = fork w({iters});
        join a;
        join b;
        assert(counter == {total}, "scaling_mutex: protected counter is exact");
    }}
    "#
    )
}

/// A heavier sim_race for overhead measurement: each worker performs
/// `iters` iterations of eight unprotected shared accesses.
pub fn sim_race_heavy(iters: u32) -> String {
    format!(
        r#"
    global int x = 0;
    global int y = 0;

    fn w(iters: int) {{
        let i: int = 0;
        while (i < iters) {{
            let a: int = x;
            x = a + 1;
            let b: int = y;
            y = b + 1;
            let c: int = x;
            x = c + 1;
            let d: int = y;
            y = d + 1;
            i = i + 1;
        }}
    }}

    fn main() {{
        let t1: thread = fork w({iters});
        let t2: thread = fork w({iters});
        let t3: thread = fork w({iters});
        let t4: thread = fork w({iters});
        join t1; join t2; join t3; join t4;
    }}
    "#
    )
}

/// A correct bounded buffer (while-based waits) sized for overhead
/// measurement: one producer and two consumers stream `n` items.
pub fn bbuf_heavy(n: u32) -> String {
    let half = n / 2;
    format!(
        r#"
    global int buf[4];
    global int count = 0;
    global int consumed = 0;
    mutex m;
    cond notempty;
    cond notfull;

    fn producer(n: int) {{
        let i: int = 0;
        while (i < n) {{
            lock(m);
            while (count == 4) {{ wait(notfull, m); }}
            buf[count & 3] = i + 1;
            count = count + 1;
            signal(notempty);
            unlock(m);
            i = i + 1;
        }}
    }}

    fn consumer(n: int) {{
        let i: int = 0;
        while (i < n) {{
            lock(m);
            while (count == 0) {{ wait(notempty, m); }}
            count = count - 1;
            consumed = consumed + 1;
            signal(notfull);
            unlock(m);
            i = i + 1;
        }}
    }}

    fn main() {{
        let c1: thread = fork consumer({half});
        let c2: thread = fork consumer({half});
        let p: thread = fork producer({n});
        join p;
        join c1;
        join c2;
    }}
    "#
    )
}

/// A heavier racey mix (four mixes per iteration) for overhead
/// measurement; the placeholder signature means the final assert fires,
/// which does not matter for timing.
pub fn racey_heavy(iters: u32) -> String {
    format!(
        r#"
    global int sig[8];

    fn mix(id: int, iters: int) {{
        let i: int = 0;
        while (i < iters) {{
            let a: int = sig[i & 7];
            let b: int = sig[(i + id) & 7];
            sig[(a + b) & 7] = a + b * 31 + id;
            let c: int = sig[(i + 1) & 7];
            let d: int = sig[(i + id + 1) & 7];
            sig[(c + d) & 7] = c + d * 29 + id;
            let e: int = sig[(i + 2) & 7];
            let f: int = sig[(i + id + 2) & 7];
            sig[(e + f) & 7] = e + f * 23 + id;
            let g: int = sig[(i + 3) & 7];
            let h: int = sig[(i + id + 3) & 7];
            sig[(g + h) & 7] = g + h * 19 + id;
            i = i + 1;
        }}
    }}

    fn main() {{
        let i: int = 0;
        while (i < 8) {{
            sig[i] = i + 1;
            i = i + 1;
        }}
        let t1: thread = fork mix(1, {iters});
        let t2: thread = fork mix(2, {iters});
        join t1;
        join t2;
    }}
    "#
    )
}

/// chan_lost_close — the minimal lost-close race: main closes the
/// channel while the producer is still sending, so a dropped payload
/// turns into a `-1` drain on the consumer side. Shared source with
/// `examples/chan_lost_close.clap`.
pub fn chan_lost_close() -> String {
    include_str!("../../../examples/chan_lost_close.clap").to_owned()
}

/// chan_pipeline — a two-stage producer → transform → sink pipeline
/// over two bounded channels; an early close poisons the downstream
/// sum. Shared source with `examples/chan_pipeline.clap`.
pub fn chan_pipeline() -> String {
    include_str!("../../../examples/chan_pipeline.clap").to_owned()
}

/// chan_workqueue — a bounded work-queue whose producer sheds items
/// with `try_send` when the consumer falls behind. Shared source with
/// `examples/chan_workqueue.clap`.
pub fn chan_workqueue() -> String {
    include_str!("../../../examples/chan_workqueue.clap").to_owned()
}

/// chan_fanin — two producers feed one channel; the aggregator's final
/// `try_recv` poll races with the last send. Shared source with
/// `examples/chan_fanin.clap`.
pub fn chan_fanin() -> String {
    include_str!("../../../examples/chan_fanin.clap").to_owned()
}

/// actor_pingpong — an actor rally over two rendezvous channels, with
/// the multiplier delivered through a `spawn_actor` mailbox and a
/// racing close dropping replies. Shared source with
/// `examples/actor_pingpong.clap`.
pub fn actor_pingpong() -> String {
    include_str!("../../../examples/actor_pingpong.clap").to_owned()
}

/// treiber_stack — lock-free push/pop where a relaxed CAS publishes the
/// top pointer while the node payload store is still buffered. Shared
/// source with `examples/treiber_stack.clap`.
pub fn treiber_stack() -> String {
    include_str!("../../../examples/treiber_stack.clap").to_owned()
}

/// spsc_ring — single-producer single-consumer ring buffer whose relaxed
/// head publish can drain before the slot write. Shared source with
/// `examples/spsc_ring.clap`.
pub fn spsc_ring() -> String {
    include_str!("../../../examples/spsc_ring.clap").to_owned()
}

/// seqlock — sequence-counter reader/writer where relaxed RMW bumps land
/// immediately while the payload stores stay buffered, yielding a torn
/// read under a stable even sequence. Shared source with
/// `examples/seqlock.clap`.
pub fn seqlock() -> String {
    include_str!("../../../examples/seqlock.clap").to_owned()
}
