//! The eleven workloads of the paper's evaluation (§6, Tables 1–3) as DSL
//! programs, plus the Figure 2 running example.
//!
//! Each [`Workload`] carries its program source, the memory model under
//! which its bug manifests, and exploration hints (seed budget and
//! scheduler stickiness values) for triggering the failure — the
//! reproduction's substitute for the paper's manually inserted timing
//! delays.
//!
//! Sizes are scaled to interpreter-friendly values; EXPERIMENTS.md records
//! the scaled-vs-paper numbers.

pub mod programs;

use clap_ir::{parse, Program};
use clap_vm::{FifoScheduler, MemModel, NullMonitor, Outcome, RandomScheduler, Vm};

/// One evaluated workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name (the paper's Table 1 row label).
    pub name: &'static str,
    /// The paper subject it models.
    pub paper_subject: &'static str,
    /// DSL source.
    pub source: String,
    /// Memory model under which the bug manifests.
    pub model: MemModel,
    /// Seeds to sweep per stickiness when hunting the failure.
    pub seed_budget: u64,
    /// Scheduler stickiness values to sweep.
    pub stickiness: &'static [f64],
}

impl Workload {
    /// Parses the workload's program.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source is invalid (a bug in this crate).
    pub fn program(&self) -> Program {
        parse(&self.source).expect("workload sources are valid")
    }

    /// Source line count (the Table 1 `LOC` column analogue).
    pub fn loc(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }
}

const DEFAULT_STICKINESS: &[f64] = &[0.9, 0.7, 0.5];
const RELAXED_STICKINESS: &[f64] = &[0.9, 0.7, 0.5, 0.3];

/// Builds the full workload suite in the paper's Table 1 order.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "sim_race",
            paper_subject: "sim_race (75 LoC racey toy)",
            source: programs::sim_race(),
            model: MemModel::Sc,
            seed_budget: 2_000,
            stickiness: DEFAULT_STICKINESS,
        },
        Workload {
            name: "pbzip2",
            paper_subject: "pbzip2-0.9.4 order violation",
            source: programs::pbzip2(2),
            model: MemModel::Sc,
            seed_budget: 2_000,
            stickiness: DEFAULT_STICKINESS,
        },
        Workload {
            name: "aget",
            paper_subject: "aget-0.4.1 progress race",
            source: programs::aget(3),
            model: MemModel::Sc,
            seed_budget: 2_000,
            stickiness: DEFAULT_STICKINESS,
        },
        Workload {
            name: "bbuf",
            paper_subject: "shared bounded buffer (if-instead-of-while)",
            source: programs::bbuf(),
            model: MemModel::Sc,
            seed_budget: 4_000,
            stickiness: DEFAULT_STICKINESS,
        },
        Workload {
            name: "swarm",
            paper_subject: "swarm parallel sort",
            source: programs::swarm(4),
            model: MemModel::Sc,
            seed_budget: 2_000,
            stickiness: DEFAULT_STICKINESS,
        },
        Workload {
            name: "pfscan",
            paper_subject: "pfscan parallel file scanner",
            source: programs::pfscan(8),
            model: MemModel::Sc,
            seed_budget: 4_000,
            stickiness: DEFAULT_STICKINESS,
        },
        Workload {
            name: "apache",
            paper_subject: "apache-2.2.9 bug #45605",
            source: programs::apache(2, 2),
            model: MemModel::Sc,
            seed_budget: 6_000,
            stickiness: DEFAULT_STICKINESS,
        },
        Workload {
            name: "racey",
            paper_subject: "racey deterministic-replay stress benchmark",
            source: baked_racey(6),
            model: MemModel::Sc,
            seed_budget: 2_000,
            stickiness: DEFAULT_STICKINESS,
        },
        Workload {
            name: "bakery",
            paper_subject: "Lamport bakery under relaxed memory",
            source: programs::bakery(3),
            model: MemModel::Pso,
            seed_budget: 20_000,
            stickiness: RELAXED_STICKINESS,
        },
        Workload {
            name: "dekker",
            paper_subject: "Dekker under relaxed memory",
            source: programs::dekker(2),
            model: MemModel::Tso,
            seed_budget: 20_000,
            stickiness: RELAXED_STICKINESS,
        },
        Workload {
            name: "peterson",
            paper_subject: "Peterson under relaxed memory",
            source: programs::peterson(2),
            model: MemModel::Tso,
            seed_budget: 20_000,
            stickiness: RELAXED_STICKINESS,
        },
    ]
}

/// The message-passing workload family: bounded channels and actor
/// mailboxes. Not part of the paper's Table 1 (which predates the
/// channel primitives) — this is the scenario-diversity rung on top of
/// it, and every member is oracle-certified by the differential suite.
pub fn channels() -> Vec<Workload> {
    let chan = |name: &'static str, subject: &'static str, source: String| Workload {
        name,
        paper_subject: subject,
        source,
        model: MemModel::Sc,
        seed_budget: 4_000,
        stickiness: DEFAULT_STICKINESS,
    };
    vec![
        chan(
            "chan_lost_close",
            "lost-close race (dropped send, drained recv)",
            programs::chan_lost_close(),
        ),
        chan(
            "chan_pipeline",
            "two-stage bounded-channel pipeline",
            programs::chan_pipeline(),
        ),
        chan(
            "chan_workqueue",
            "bounded work-queue with try_send shedding",
            programs::chan_workqueue(),
        ),
        chan(
            "chan_fanin",
            "fan-in aggregator with racing try_recv poll",
            programs::chan_fanin(),
        ),
        chan(
            "actor_pingpong",
            "actor ping-pong rally with mailbox config",
            programs::actor_pingpong(),
        ),
    ]
}

/// The lock-free workload family: classic non-blocking idioms whose
/// publication discipline is too weak, so they fail only under the C11
/// model (atomics are seq_cst fences under SC/TSO/PSO). Each reproduces
/// end to end through the constraint pipeline.
pub fn lockfree() -> Vec<Workload> {
    let lf = |name: &'static str, subject: &'static str, source: String| Workload {
        name,
        paper_subject: subject,
        source,
        model: MemModel::C11,
        seed_budget: 20_000,
        stickiness: RELAXED_STICKINESS,
    };
    vec![
        lf(
            "treiber_stack",
            "Treiber stack with relaxed CAS publication",
            programs::treiber_stack(),
        ),
        lf(
            "spsc_ring",
            "SPSC ring buffer with relaxed head publish",
            programs::spsc_ring(),
        ),
        lf(
            "seqlock",
            "seqlock with relaxed sequence bumps (torn read)",
            programs::seqlock(),
        ),
    ]
}

/// Looks up a workload by name, searching Table 1 first, then the
/// channel family, then the lock-free family.
pub fn by_name(name: &str) -> Option<Workload> {
    all()
        .into_iter()
        .chain(channels())
        .chain(lockfree())
        .find(|w| w.name == name)
}

/// The heavier workload variants used for the Table 2 overhead
/// measurement: same programs, scaled to make instrumentation cost
/// measurable (the paper measures full production runs, not the tiny
/// failure-triggering ones).
pub fn table2_suite() -> Vec<Workload> {
    let heavy =
        |name: &'static str, subject: &'static str, source: String, model: MemModel| Workload {
            name,
            paper_subject: subject,
            source,
            model,
            seed_budget: 1,
            stickiness: DEFAULT_STICKINESS,
        };
    vec![
        heavy(
            "sim_race",
            "sim_race scaled",
            programs::sim_race_heavy(400),
            MemModel::Sc,
        ),
        heavy(
            "pbzip2",
            "pbzip2 scaled",
            programs::pbzip2(200),
            MemModel::Sc,
        ),
        heavy("aget", "aget scaled", programs::aget(500), MemModel::Sc),
        heavy(
            "bbuf",
            "bounded buffer scaled (correct)",
            programs::bbuf_heavy(300),
            MemModel::Sc,
        ),
        heavy("swarm", "swarm scaled", programs::swarm(32), MemModel::Sc),
        heavy(
            "pfscan",
            "pfscan scaled",
            programs::pfscan(1000),
            MemModel::Sc,
        ),
        heavy(
            "apache",
            "apache scaled",
            programs::apache(300, 2),
            MemModel::Sc,
        ),
        heavy(
            "racey",
            "racey scaled",
            programs::racey_heavy(1500),
            MemModel::Sc,
        ),
        heavy(
            "bakery",
            "bakery scaled",
            programs::bakery(4),
            MemModel::Pso,
        ),
        heavy(
            "dekker",
            "dekker scaled",
            programs::dekker(150),
            MemModel::Tso,
        ),
        heavy(
            "peterson",
            "peterson scaled",
            programs::peterson(150),
            MemModel::Tso,
        ),
    ]
}

/// The Figure 2 running example (not part of Table 1; used by the figure
/// binaries).
pub fn figure2() -> Workload {
    Workload {
        name: "figure2",
        paper_subject: "Figure 2 running example",
        source: programs::figure2(),
        model: MemModel::Pso,
        seed_budget: 20_000,
        stickiness: RELAXED_STICKINESS,
    }
}

/// The exploration-scaling workload (not part of Table 1; used by
/// `bench_explore`'s large-budget cells): a *correct* mutex-protected
/// counter whose assert never fails, so every sweep runs its full seed
/// budget — the worst case for the record-phase worker pool. A single
/// stickiness level keeps one bench cell equal to one level sweep.
pub fn scaling() -> Workload {
    Workload {
        name: "scaling",
        paper_subject: "exploration-scaling probe (correct mutex counter)",
        source: programs::scaling_mutex(3),
        model: MemModel::Sc,
        seed_budget: 100_000,
        stickiness: &[0.7],
    }
}

/// Builds racey with the reference signature of a serial execution baked
/// in, so racy interleavings diverge from it and fail the assert.
fn baked_racey(iters: u32) -> String {
    let reference = parse(&programs::racey_reference(iters)).expect("racey parses");
    let mut vm = Vm::new(&reference, MemModel::Sc);
    let outcome = vm.run(&mut FifoScheduler, &mut NullMonitor);
    // The serial run hits the placeholder assert (s == 0 is false) right
    // at the end — by then the signature array is final.
    debug_assert!(matches!(
        outcome,
        Outcome::AssertFailed { .. } | Outcome::Completed
    ));
    let sig_global = reference.global_by_name("sig").expect("sig exists");
    let mut s: i64 = 0;
    for i in 0..8 {
        s = s
            .wrapping_mul(17)
            .wrapping_add(vm.read_global(sig_global, i));
    }
    programs::racey(iters, s)
}

/// A found failing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailingRun {
    /// The random-scheduler seed.
    pub seed: u64,
    /// The stickiness (×1000, to stay `Eq`) it was found at.
    pub stickiness_millis: u32,
}

impl FailingRun {
    /// The stickiness as a float.
    pub fn stickiness(&self) -> f64 {
        self.stickiness_millis as f64 / 1000.0
    }
}

/// Sweeps seeds/stickiness until the workload's assert fails.
pub fn find_failure(workload: &Workload) -> Option<FailingRun> {
    let program = workload.program();
    for &stick in workload.stickiness {
        for seed in 0..workload.seed_budget {
            let mut vm = Vm::new(&program, workload.model);
            vm.set_step_limit(2_000_000);
            let mut sched = RandomScheduler::with_stickiness(seed, stick);
            if vm.run(&mut sched, &mut NullMonitor).is_failure() {
                return Some(FailingRun {
                    seed,
                    stickiness_millis: (stick * 1000.0) as u32,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_parse_and_check() {
        let suite = all();
        assert_eq!(suite.len(), 11);
        for w in &suite {
            let program = w.program();
            assert!(program.functions.len() >= 2, "{} has workers", w.name);
            assert!(w.loc() > 10, "{} is a real program", w.name);
        }
        figure2().program();
    }

    #[test]
    fn thread_counts_match_paper_shape() {
        // Table 1: sim_race 5 threads, swarm/pfscan/racey 3, bakery 4(+1),
        // dekker/peterson 3. Count = forks in main + 1.
        let counts: Vec<(usize, &str)> = all()
            .iter()
            .map(|w| {
                let forks = w.source.matches("fork ").count();
                (forks + 1, w.name)
            })
            .collect();
        let get = |name: &str| counts.iter().find(|(_, n)| *n == name).unwrap().0;
        assert_eq!(get("sim_race"), 5);
        assert_eq!(get("swarm"), 3);
        assert_eq!(get("pfscan"), 3);
        assert_eq!(get("racey"), 3);
        assert_eq!(get("bakery"), 4);
        assert_eq!(get("dekker"), 3);
        assert_eq!(get("peterson"), 3);
    }

    #[test]
    fn channel_workloads_parse_and_declare_channels_or_mailboxes() {
        let suite = channels();
        assert_eq!(suite.len(), 5);
        for w in &suite {
            let program = w.program();
            assert!(
                !program.chans.is_empty() || w.source.contains("mailbox"),
                "{} exercises message passing",
                w.name
            );
            assert!(by_name(w.name).is_some(), "{} resolves by name", w.name);
        }
    }

    #[test]
    fn channel_workload_failures_are_findable() {
        for w in &channels() {
            assert!(find_failure(w).is_some(), "{} failure not found", w.name);
        }
    }

    #[test]
    fn lockfree_workloads_parse_and_declare_atomics() {
        let suite = lockfree();
        assert_eq!(suite.len(), 3);
        for w in &suite {
            let program = w.program();
            assert!(
                program.globals.iter().any(|g| g.atomic),
                "{} declares atomics",
                w.name
            );
            assert_eq!(w.model, MemModel::C11);
            assert!(by_name(w.name).is_some(), "{} resolves by name", w.name);
        }
    }

    #[test]
    fn lockfree_failures_are_findable_only_under_c11() {
        for w in &lockfree() {
            // Under SC the atomics are seq_cst fences: the weak
            // publication cannot be observed.
            let program = w.program();
            for seed in 0..400 {
                let mut vm = Vm::new(&program, MemModel::Sc);
                vm.set_step_limit(2_000_000);
                let mut sched = RandomScheduler::with_stickiness(seed, 0.5);
                let outcome = vm.run(&mut sched, &mut NullMonitor);
                assert!(
                    !outcome.is_failure(),
                    "{} must be correct under SC (seed {seed})",
                    w.name
                );
            }
            assert!(
                find_failure(w).is_some(),
                "{} failure not found under C11",
                w.name
            );
        }
    }

    #[test]
    fn sc_workload_failures_are_findable() {
        for name in ["sim_race", "aget", "swarm", "pfscan", "racey"] {
            let w = by_name(name).unwrap();
            assert!(find_failure(&w).is_some(), "{name} failure not found");
        }
    }

    #[test]
    fn sync_heavy_workload_failures_are_findable() {
        for name in ["pbzip2", "bbuf", "apache"] {
            let w = by_name(name).unwrap();
            assert!(find_failure(&w).is_some(), "{name} failure not found");
        }
    }

    #[test]
    fn mutual_exclusion_workloads_fail_only_under_relaxed_models() {
        for name in ["dekker", "peterson"] {
            let w = by_name(name).unwrap();
            // Safe under SC…
            let program = w.program();
            for seed in 0..400 {
                let mut vm = Vm::new(&program, MemModel::Sc);
                vm.set_step_limit(2_000_000);
                let mut sched = RandomScheduler::with_stickiness(seed, 0.5);
                let outcome = vm.run(&mut sched, &mut NullMonitor);
                assert!(
                    !outcome.is_failure(),
                    "{name} must be correct under SC (seed {seed})"
                );
            }
            // …broken under its relaxed model.
            assert!(
                find_failure(&w).is_some(),
                "{name} must fail under {:?}",
                w.model
            );
        }
    }

    #[test]
    fn bakery_fails_under_pso() {
        let w = by_name("bakery").unwrap();
        assert!(find_failure(&w).is_some(), "bakery must fail under PSO");
    }

    #[test]
    fn table2_suite_parses_and_is_heavier() {
        let suite = table2_suite();
        assert_eq!(suite.len(), 11);
        for heavy in &suite {
            let program = heavy.program();
            let light = by_name(heavy.name).unwrap().program();
            // Heavier = more work when run: compare instruction counts on
            // the same seed (bakery's spin loops are schedule-dependent;
            // accept parity there).
            let run = |p: &clap_ir::Program, model| {
                let mut vm = Vm::new(p, model);
                vm.set_step_limit(4_000_000);
                let mut sched = RandomScheduler::with_stickiness(1, 0.7);
                vm.run(&mut sched, &mut NullMonitor);
                vm.stats().instructions
            };
            let heavy_inst = run(&program, heavy.model);
            let light_inst = run(&light, by_name(heavy.name).unwrap().model);
            assert!(
                heavy.name == "bakery" || heavy_inst > light_inst,
                "{}: heavy {} vs light {}",
                heavy.name,
                heavy_inst,
                light_inst
            );
        }
    }

    #[test]
    fn racey_reference_signature_is_deterministic() {
        let a = baked_racey(6);
        let b = baked_racey(6);
        assert_eq!(a, b);
    }

    #[test]
    fn figure2_fails_under_pso() {
        let w = figure2();
        assert!(
            find_failure(&w).is_some(),
            "figure2 has a reproducible failure"
        );
    }
}
