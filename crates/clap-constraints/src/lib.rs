//! CLAP execution-constraint modeling (§3 of the paper):
//! `F = F_path ∧ F_bug ∧ F_so ∧ F_rw ∧ F_mo`.
//!
//! [`ConstraintSystem::build`] turns a [`clap_symex::SymTrace`] into the
//! structural constraints (memory order per SC/TSO/PSO, lock regions,
//! fork/join partial order, wait/signal matching, read-write candidates);
//! [`validate()`](validate()) checks a candidate [`Schedule`] against the *whole* system
//! in one linear walk — the "validation is evaluation" property that the
//! parallel solver of §4.3 exploits; [`count()`](count()) reports the system's size
//! for Table 1.
//!
//! # Example
//!
//! ```no_run
//! use clap_constraints::{ConstraintSystem, Schedule, validate};
//! use clap_vm::MemModel;
//! # fn demo(program: &clap_ir::Program, trace: &clap_symex::SymTrace, order: Vec<clap_symex::SapId>) {
//! let system = ConstraintSystem::build(program, trace, MemModel::Sc);
//! let candidate = Schedule::new(order, trace);
//! match validate(program, &system, &candidate) {
//!     Ok(witness) => println!("reproduces the bug: {} reads matched", witness.reads_from.len()),
//!     Err(e) => println!("rejected: {e}"),
//! }
//! # }
//! ```

pub mod count;
pub mod schedule;
pub mod system;
pub mod validate;

pub use count::{count, ConstraintStats};
pub use schedule::Schedule;
pub use system::{
    ConstraintSystem, LockRegion, ReadConstraint, ReadSource, RecvConstraint, SyncOrderMismatch,
    WaitConstraint,
};
pub use validate::{validate, ValidationError, Witness};
