//! Schedule validation: "validation is evaluation".
//!
//! Given a *total order* over the SAPs, everything else about the
//! execution is determined: each read observes the most recent write to
//! its cell, so the symbolic variables get concrete values, so the path
//! conditions and the bug predicate can simply be evaluated, and lock /
//! wait legality can be simulated in one pass. This is the cheap
//! per-candidate check that makes the §4.3 generate-and-validate search
//! embarrassingly parallel.

use crate::schedule::Schedule;
use crate::system::{ConstraintSystem, ReadSource};
use clap_ir::{GlobalId, MutexId, Program};
use clap_symex::{SapId, SapKind, SymTrace, ThreadIdx};
use std::collections::HashMap;
use std::fmt;

/// Why a candidate schedule is infeasible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A hard memory-order / fork-join edge is violated.
    OrderViolation {
        /// The edge's source.
        before: SapId,
        /// The edge's target (scheduled too early).
        after: SapId,
    },
    /// A mutex operation is illegal at its position.
    LockViolation {
        /// The offending SAP.
        sap: SapId,
        /// Description.
        reason: String,
    },
    /// A wait completion has no signal/broadcast to consume.
    UnmatchedWait {
        /// The wait-completion SAP.
        wait: SapId,
    },
    /// A channel or mailbox operation is illegal at its position.
    ChannelViolation {
        /// The offending SAP.
        sap: SapId,
        /// Description.
        reason: String,
    },
    /// An address expression evaluated out of bounds (or not at all).
    BadAddress {
        /// The offending SAP.
        sap: SapId,
    },
    /// A path condition evaluated to false.
    PathViolation {
        /// Index into the trace's path conditions.
        index: usize,
    },
    /// The bug predicate evaluated to false: the schedule is a legal
    /// execution but does not reproduce the failure.
    BugNotManifested,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::OrderViolation { before, after } => {
                write!(f, "order violation: {before} must precede {after}")
            }
            ValidationError::LockViolation { sap, reason } => {
                write!(f, "lock violation at {sap}: {reason}")
            }
            ValidationError::UnmatchedWait { wait } => write!(f, "unmatched wait {wait}"),
            ValidationError::ChannelViolation { sap, reason } => {
                write!(f, "channel violation at {sap}: {reason}")
            }
            ValidationError::BadAddress { sap } => write!(f, "bad address at {sap}"),
            ValidationError::PathViolation { index } => {
                write!(f, "path condition {index} violated")
            }
            ValidationError::BugNotManifested => write!(f, "bug not manifested"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// A validated schedule's explanation: concrete values and reads-from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Concrete value of every symbolic variable, indexed by
    /// [`clap_symex::SymVarId`].
    pub assignment: Vec<i64>,
    /// For every read SAP: where its value came from.
    pub reads_from: Vec<(SapId, ReadSource)>,
}

/// Validates `schedule` against the full constraint system.
///
/// # Errors
///
/// Returns the first [`ValidationError`] encountered; a `BugNotManifested`
/// error means the schedule is executable but boring.
pub fn validate(
    program: &Program,
    system: &ConstraintSystem<'_>,
    schedule: &Schedule,
) -> Result<Witness, ValidationError> {
    let trace = system.trace;
    let pos = schedule.positions();

    // 1. Hard edges (F_mo + fork/join).
    for &(a, b) in &system.hard_edges {
        if pos[a.index()] >= pos[b.index()] {
            return Err(ValidationError::OrderViolation {
                before: a,
                after: b,
            });
        }
    }

    // Precompute which unlocks are wait releases.
    let release_of: HashMap<SapId, SapId> =
        system.waits.iter().map(|w| (w.release, w.wait)).collect();

    // 2. Walk the schedule.
    let mut assignment: Vec<Option<i64>> = vec![None; trace.sym_vars.len()];
    let assign_fn = |assignment: &Vec<Option<i64>>| {
        let a = assignment.clone();
        move |v: clap_symex::SymVarId| a[v.index()]
    };
    let mut memory: HashMap<(GlobalId, i64), i64> = HashMap::new();
    let mut writer: HashMap<(GlobalId, i64), SapId> = HashMap::new();
    let mut owner: HashMap<MutexId, ThreadIdx> = HashMap::new();
    // Cond state: parked threads (park position) and signal tokens.
    let mut parked: HashMap<SapId, u32> = HashMap::new(); // wait sap -> park position
    let mut signal_pos: HashMap<SapId, u32> = HashMap::new();
    let mut consumed: HashMap<SapId, bool> = HashMap::new();
    let mut broadcast_pos: HashMap<SapId, u32> = HashMap::new();
    let mut reads_from = Vec::new();
    // Channel state: FIFO queues, closed flags, per-thread mailboxes.
    let mut chan_q: Vec<std::collections::VecDeque<i64>> =
        vec![Default::default(); program.chans.len()];
    let mut chan_closed: Vec<bool> = vec![false; program.chans.len()];
    let mut mailboxes: HashMap<ThreadIdx, std::collections::VecDeque<i64>> = HashMap::new();

    // Rendezvous enablement for cap-0 channels: a send completes only
    // when some other thread is positioned at a blocking recv on the same
    // channel. In the total-order model that means the thread's *next*
    // scheduled SAP after position `i` is that recv.
    let recv_positioned_after = |i: usize, sender: ThreadIdx, chan: clap_ir::ChanId| -> bool {
        trace.per_thread.iter().enumerate().any(|(ti, saps)| {
            if ThreadIdx(ti as u32) == sender {
                return false;
            }
            saps.iter()
                .filter(|&&x| pos[x.index()] as usize > i)
                .min_by_key(|&&x| pos[x.index()])
                .is_some_and(
                    |&x| matches!(trace.sap(x).kind, SapKind::Recv { chan: c, .. } if c == chan),
                )
        })
    };

    let cell = |program: &Program,
                trace: &SymTrace,
                assignment: &Vec<Option<i64>>,
                sap: SapId,
                addr: clap_symex::SymAddr|
     -> Result<(GlobalId, i64), ValidationError> {
        let idx = match addr.index {
            None => 0,
            Some(e) => {
                let f = {
                    let a = assignment.clone();
                    move |v: clap_symex::SymVarId| a[v.index()]
                };
                trace
                    .arena
                    .eval(e, &f)
                    .ok_or(ValidationError::BadAddress { sap })?
            }
        };
        let cells = program.globals[addr.global.index()].cells() as i64;
        if idx < 0 || idx >= cells {
            return Err(ValidationError::BadAddress { sap });
        }
        Ok((addr.global, idx))
    };

    for (i, &s) in schedule.order.iter().enumerate() {
        let sap = trace.sap(s);
        match sap.kind {
            SapKind::Read { addr, var } => {
                let key = cell(program, trace, &assignment, s, addr)?;
                let init = SymTrace::init_value(program, key.0);
                let value = memory.get(&key).copied().unwrap_or(init);
                assignment[var.index()] = Some(value);
                let source = writer
                    .get(&key)
                    .map(|&w| ReadSource::Write(w))
                    .unwrap_or(ReadSource::Init);
                reads_from.push((s, source));
            }
            SapKind::Write { addr, value } => {
                let key = cell(program, trace, &assignment, s, addr)?;
                let f = assign_fn(&assignment);
                let v = trace
                    .arena
                    .eval(value, &f)
                    .ok_or(ValidationError::BadAddress { sap: s })?;
                memory.insert(key, v);
                writer.insert(key, s);
            }
            SapKind::Lock(m) => {
                if owner.contains_key(&m) {
                    return Err(ValidationError::LockViolation {
                        sap: s,
                        reason: "mutex already held".into(),
                    });
                }
                owner.insert(m, sap.thread);
            }
            SapKind::Unlock(m) => {
                if owner.get(&m) != Some(&sap.thread) {
                    return Err(ValidationError::LockViolation {
                        sap: s,
                        reason: "unlock by non-owner".into(),
                    });
                }
                owner.remove(&m);
                if let Some(&wait) = release_of.get(&s) {
                    parked.insert(wait, i as u32);
                }
            }
            SapKind::Wait { mutex, .. } => {
                let Some(&park) = parked.get(&s) else {
                    return Err(ValidationError::UnmatchedWait { wait: s });
                };
                // Find the wait row and an eligible wake-up source.
                let row = system
                    .waits
                    .iter()
                    .find(|w| w.wait == s)
                    .expect("wait row exists");
                let mut woken = row.broadcasts.iter().any(|&b| {
                    broadcast_pos
                        .get(&b)
                        .is_some_and(|&bp| bp > park && bp < i as u32)
                });
                if !woken {
                    // Greedily consume the earliest eligible signal.
                    let mut best: Option<(u32, SapId)> = None;
                    for &sig in &row.signals {
                        if consumed.get(&sig).copied().unwrap_or(false) {
                            continue;
                        }
                        if let Some(&sp) = signal_pos.get(&sig) {
                            if sp > park
                                && sp < i as u32
                                && best.map(|(bp, _)| sp < bp).unwrap_or(true)
                            {
                                best = Some((sp, sig));
                            }
                        }
                    }
                    if let Some((_, sig)) = best {
                        consumed.insert(sig, true);
                        woken = true;
                    }
                }
                if !woken {
                    return Err(ValidationError::UnmatchedWait { wait: s });
                }
                // Reacquire the mutex.
                if owner.contains_key(&mutex) {
                    return Err(ValidationError::LockViolation {
                        sap: s,
                        reason: "wait reacquisition while mutex held".into(),
                    });
                }
                owner.insert(mutex, sap.thread);
                parked.remove(&s);
            }
            SapKind::Signal(_) => {
                signal_pos.insert(s, i as u32);
            }
            SapKind::Broadcast(_) => {
                broadcast_pos.insert(s, i as u32);
            }
            SapKind::Fork { .. } | SapKind::Join { .. } | SapKind::SpawnActor { .. } => {
                // Covered by hard edges.
            }
            SapKind::Send { chan, value } => {
                // A send on a closed channel silently drops the value.
                if !chan_closed[chan.index()] {
                    let cap = program.chans[chan.index()].cap;
                    if cap == 0 {
                        if !chan_q[chan.index()].is_empty() {
                            return Err(ValidationError::ChannelViolation {
                                sap: s,
                                reason: "rendezvous slot occupied".into(),
                            });
                        }
                        if !recv_positioned_after(i, sap.thread, chan) {
                            return Err(ValidationError::ChannelViolation {
                                sap: s,
                                reason: "rendezvous send without positioned receiver".into(),
                            });
                        }
                    } else if chan_q[chan.index()].len() >= cap {
                        return Err(ValidationError::ChannelViolation {
                            sap: s,
                            reason: "send on full channel".into(),
                        });
                    }
                    let f = assign_fn(&assignment);
                    let v = trace
                        .arena
                        .eval(value, &f)
                        .ok_or(ValidationError::BadAddress { sap: s })?;
                    chan_q[chan.index()].push_back(v);
                }
            }
            SapKind::Recv { chan, var } => {
                let v = if let Some(v) = chan_q[chan.index()].pop_front() {
                    v
                } else if chan_closed[chan.index()] {
                    -1
                } else {
                    return Err(ValidationError::ChannelViolation {
                        sap: s,
                        reason: "recv on open empty channel".into(),
                    });
                };
                assignment[var.index()] = Some(v);
            }
            SapKind::TrySend { chan, value, var } => {
                let cap = program.chans[chan.index()].cap;
                let ok = if chan_closed[chan.index()] {
                    false
                } else if cap == 0 {
                    chan_q[chan.index()].is_empty() && recv_positioned_after(i, sap.thread, chan)
                } else {
                    chan_q[chan.index()].len() < cap
                };
                if ok {
                    let f = assign_fn(&assignment);
                    let v = trace
                        .arena
                        .eval(value, &f)
                        .ok_or(ValidationError::BadAddress { sap: s })?;
                    chan_q[chan.index()].push_back(v);
                }
                assignment[var.index()] = Some(ok as i64);
            }
            SapKind::TryRecv { chan, var } => {
                let v = chan_q[chan.index()].pop_front().unwrap_or(-1);
                assignment[var.index()] = Some(v);
            }
            SapKind::ChanClose(c) => {
                chan_closed[c.index()] = true;
            }
            SapKind::MailboxSend { target, value } => {
                let f = assign_fn(&assignment);
                let v = trace
                    .arena
                    .eval(value, &f)
                    .ok_or(ValidationError::BadAddress { sap: s })?;
                mailboxes.entry(target).or_default().push_back(v);
            }
            SapKind::AtomicLoad { global, var, .. } => {
                let key = (global, 0);
                let init = SymTrace::init_value(program, global);
                let value = memory.get(&key).copied().unwrap_or(init);
                assignment[var.index()] = Some(value);
                let source = writer
                    .get(&key)
                    .map(|&w| ReadSource::Write(w))
                    .unwrap_or(ReadSource::Init);
                reads_from.push((s, source));
            }
            SapKind::AtomicStore { global, value, .. } => {
                let key = (global, 0);
                let f = assign_fn(&assignment);
                let v = trace
                    .arena
                    .eval(value, &f)
                    .ok_or(ValidationError::BadAddress { sap: s })?;
                memory.insert(key, v);
                writer.insert(key, s);
            }
            SapKind::AtomicRmw {
                global, var, value, ..
            }
            | SapKind::AtomicCas {
                global, var, value, ..
            } => {
                // One indivisible step: read the old value, ground the
                // RMW's variable with it, then evaluate and commit the
                // written expression (for CAS an ITE that folds a failed
                // swap back to the old value).
                let key = (global, 0);
                let init = SymTrace::init_value(program, global);
                let old = memory.get(&key).copied().unwrap_or(init);
                assignment[var.index()] = Some(old);
                let source = writer
                    .get(&key)
                    .map(|&w| ReadSource::Write(w))
                    .unwrap_or(ReadSource::Init);
                reads_from.push((s, source));
                let f = assign_fn(&assignment);
                let v = trace
                    .arena
                    .eval(value, &f)
                    .ok_or(ValidationError::BadAddress { sap: s })?;
                memory.insert(key, v);
                writer.insert(key, s);
            }
            SapKind::MailboxRecv { var } => {
                let Some(v) = mailboxes.entry(sap.thread).or_default().pop_front() else {
                    return Err(ValidationError::ChannelViolation {
                        sap: s,
                        reason: "mailbox_recv on empty mailbox".into(),
                    });
                };
                assignment[var.index()] = Some(v);
            }
        }
    }

    // 3. Path conditions and the bug predicate.
    let f = assign_fn(&assignment);
    for (idx, pc) in trace.path_conds.iter().enumerate() {
        match trace.arena.eval(pc.expr, &f) {
            Some(v) if v != 0 => {}
            _ => return Err(ValidationError::PathViolation { index: idx }),
        }
    }
    match trace.arena.eval(trace.bug, &f) {
        Some(v) if v != 0 => {}
        _ => return Err(ValidationError::BugNotManifested),
    }

    let assignment: Vec<i64> = assignment.into_iter().map(|v| v.unwrap_or(0)).collect();
    Ok(Witness {
        assignment,
        reads_from,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::tests::build_failure;
    use clap_vm::MemModel;

    const LOST_UPDATE: &str = "global int x = 0;
         fn w() { let v: int = x; yield; x = v + 1; }
         fn main() { let a: thread = fork w(); let b: thread = fork w();
                     join a; join b; assert(x == 2, \"lost\"); }";

    /// Enumerates every linear extension of the hard edges (exact for
    /// small traces) and returns those that validate.
    fn all_valid_schedules(
        program: &clap_ir::Program,
        sys: &ConstraintSystem<'_>,
    ) -> (usize, Vec<Schedule>) {
        let n = sys.trace.sap_count();
        assert!(n <= 16, "exhaustive enumeration only for tiny traces");
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &sys.hard_edges {
            preds[b.index()].push(a.index());
        }
        let mut total = 0;
        let mut good = Vec::new();
        let mut placed = vec![false; n];
        let mut acc: Vec<SapId> = Vec::new();
        extend(n, &preds, &mut placed, &mut acc, &mut |perm| {
            total += 1;
            let schedule = Schedule {
                order: perm.to_vec(),
            };
            if validate(program, sys, &schedule).is_ok() {
                good.push(schedule);
            }
        });
        (total, good)
    }

    /// DFS over linear extensions: extend with any SAP whose hard-edge
    /// predecessors are all placed.
    fn extend(
        n: usize,
        preds: &[Vec<usize>],
        placed: &mut Vec<bool>,
        acc: &mut Vec<SapId>,
        f: &mut impl FnMut(&[SapId]),
    ) {
        if acc.len() == n {
            f(acc);
            return;
        }
        for x in 0..n {
            if placed[x] || !preds[x].iter().all(|&p| placed[p]) {
                continue;
            }
            placed[x] = true;
            acc.push(SapId(x as u32));
            extend(n, preds, placed, acc, f);
            acc.pop();
            placed[x] = false;
        }
    }

    #[test]
    fn lost_update_has_valid_and_invalid_schedules() {
        let (program, trace) = build_failure(LOST_UPDATE, MemModel::Sc, 500);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let (total, good) = all_valid_schedules(&program, &sys);
        assert!(total > 0);
        assert!(!good.is_empty(), "some schedule reproduces the lost update");
        assert!(
            good.len() < total,
            "schedules that interleave correctly must be rejected (bug not manifested)"
        );
        // Every witness explains the bug: the final read of x sees 1.
        for g in &good {
            let w = validate(&program, &sys, g).unwrap();
            assert!(w.assignment.contains(&1));
        }
    }

    #[test]
    fn original_schedule_validates() {
        // The recorded failing execution itself must satisfy the system:
        // build the "as-recorded" schedule from per-thread po order merged
        // by a simple round-robin that respects hard edges... easiest:
        // brute force and check at least one valid schedule has the same
        // reads-from multiset as the VM run (implicitly covered by the
        // previous test); here we check hard-edge respect of a natural
        // sequential order: all of main's pre-fork SAPs, thread 1, thread
        // 2, main's tail.
        let (program, trace) = build_failure(LOST_UPDATE, MemModel::Sc, 500);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let (_, good) = all_valid_schedules(&program, &sys);
        // A "serial" schedule (t1 fully, then t2 fully) cannot reproduce a
        // lost update; every good schedule interleaves the workers.
        for g in &good {
            let threads: Vec<_> = g
                .order
                .iter()
                .map(|&s| trace.sap(s).thread)
                .filter(|t| t.0 != 0)
                .collect();
            let mut switches = 0;
            for w in threads.windows(2) {
                if w[0] != w[1] {
                    switches += 1;
                }
            }
            assert!(switches >= 2, "workers must interleave: {threads:?}");
        }
    }

    #[test]
    fn lock_violation_detected() {
        let src = "global int x = 0; mutex m;
             fn w() { lock(m); let v: int = x; yield; x = v + 1; unlock(m); }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; let v: int = x; assert(v == 2, \"never\"); }";
        // This assertion cannot fail under locking… but we can still build
        // the system from a *passing* run? No: build_failure needs a
        // failure. Instead craft: critical sections overlap in a candidate
        // schedule must be rejected. Use an assert that fails spuriously.
        let src_fail = src.replace("v == 2", "v == 3");
        let (program, trace) = build_failure(&src_fail, MemModel::Sc, 500);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let (_, good) = all_valid_schedules(&program, &sys);
        // All valid schedules keep the two critical sections disjoint.
        for g in &good {
            let pos = g.positions();
            let m = program.mutex_by_name("m").unwrap();
            let regions = &sys.lock_regions[&m];
            assert_eq!(regions.len(), 2);
            let (a, b) = (&regions[0], &regions[1]);
            let (al, au) = (pos[a.lock.index()], pos[a.unlock.unwrap().index()]);
            let (bl, bu) = (pos[b.lock.index()], pos[b.unlock.unwrap().index()]);
            assert!(au < bl || bu < al, "critical sections must not overlap");
        }
    }

    #[test]
    fn schedule_context_switch_metric() {
        let (program, trace) = build_failure(LOST_UPDATE, MemModel::Sc, 500);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let (_, good) = all_valid_schedules(&program, &sys);
        let min_cs = good
            .iter()
            .map(|g| g.context_switches(&trace))
            .min()
            .unwrap();
        // A lost update needs exactly one preemption (one worker's
        // read-modify-write interleaved by the other's).
        assert_eq!(min_cs, 1, "lost update reproduces with one preemption");
        let _ = sys;
    }
}
