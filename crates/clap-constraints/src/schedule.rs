//! Schedules: total orders over SAPs, plus the §4.2 context-switch metric.

use clap_symex::{SapId, SapKind, SymTrace, ThreadIdx};

/// A candidate (or computed) schedule: a total order over every SAP of the
/// trace. Position `i` holds the SAP executed (for writes: made visible)
/// `i`-th.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// SAPs in execution order.
    pub order: Vec<SapId>,
}

impl Schedule {
    /// Builds a schedule, checking it is a permutation of `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the trace's SAP ids.
    pub fn new(order: Vec<SapId>, trace: &SymTrace) -> Self {
        assert_eq!(
            order.len(),
            trace.sap_count(),
            "schedule must cover every SAP"
        );
        let mut seen = vec![false; order.len()];
        for s in &order {
            assert!(!seen[s.index()], "duplicate SAP in schedule");
            seen[s.index()] = true;
        }
        Schedule { order }
    }

    /// Position of each SAP within the schedule (inverse permutation).
    pub fn positions(&self) -> Vec<u32> {
        let mut pos = vec![0u32; self.order.len()];
        for (i, s) in self.order.iter().enumerate() {
            pos[s.index()] = i as u32;
        }
        pos
    }

    /// The number of *preemptive* thread context switches, computed with
    /// the paper's segment approximation (§4.2): per-thread SAP sequences
    /// are split into segments at must-interleave operations (wait
    /// completions and joins, whose context switches are unavoidable);
    /// a segment that is interleaved by another thread's SAP counts as one
    /// preemptive switch.
    pub fn context_switches(&self, trace: &SymTrace) -> usize {
        let pos = self.positions();
        let mut count = 0usize;
        for thread_saps in &trace.per_thread {
            for segment in segments(trace, thread_saps) {
                if segment.len() <= 1 {
                    continue;
                }
                let lo = segment
                    .iter()
                    .map(|s| pos[s.index()])
                    .min()
                    .expect("non-empty");
                let hi = segment
                    .iter()
                    .map(|s| pos[s.index()])
                    .max()
                    .expect("non-empty");
                // The segment spans [lo, hi]; if it contains exactly its
                // own SAPs, no other thread interleaved it.
                if (hi - lo + 1) as usize > segment.len() {
                    count += 1;
                }
            }
        }
        count
    }
}

/// Splits a thread's SAPs into segments at must-interleave operations.
/// A must-interleave SAP *leads* a new segment: the wait forced before a
/// join/wait-completion is non-preemptive, so the gap in front of the
/// operation must fall between segments, not inside one.
fn segments(trace: &SymTrace, saps: &[SapId]) -> Vec<Vec<SapId>> {
    let mut out = Vec::new();
    let mut cur: Vec<SapId> = Vec::new();
    for &s in saps {
        let must_interleave = matches!(
            trace.sap(s).kind,
            SapKind::Wait { .. } | SapKind::Join { .. }
        );
        if must_interleave && !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
        cur.push(s);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

impl Schedule {
    /// Renders the schedule as one letter per position: `M` for the main
    /// thread, `A`, `B`, … for workers — the compact form used by the
    /// examples and the CLI to show preemption structure at a glance.
    pub fn thread_letters(&self, trace: &SymTrace) -> String {
        self.order
            .iter()
            .map(|&s| match trace.sap(s).thread.0 {
                0 => 'M',
                n => (b'A' + ((n as u8 - 1) % 26)) as char,
            })
            .collect()
    }
}

/// Returns, per thread, how many of its SAPs appear in the schedule prefix
/// of length `len` — used by replay progress reporting and tests.
pub fn prefix_progress(schedule: &Schedule, trace: &SymTrace, len: usize) -> Vec<usize> {
    let mut progress = vec![0usize; trace.thread_count()];
    for &s in schedule.order.iter().take(len) {
        progress[trace.sap(s).thread.index()] += 1;
    }
    progress
}

/// Convenience: the thread executing at each schedule position.
pub fn thread_at(schedule: &Schedule, trace: &SymTrace) -> Vec<ThreadIdx> {
    schedule
        .order
        .iter()
        .map(|&s| trace.sap(s).thread)
        .collect()
}
