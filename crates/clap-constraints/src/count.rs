//! Constraint and variable counting, feeding Table 1's `#Constraints` and
//! `#Variables` columns and mirroring the complexity analysis of §4.1.

use crate::system::ConstraintSystem;

/// Size statistics of one constraint system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConstraintStats {
    /// Clauses contributed by `F_path` (plus 1 for `F_bug`).
    pub path_clauses: usize,
    /// Clauses contributed by `F_rw` (matching + exclusion terms).
    pub rw_clauses: usize,
    /// Clauses contributed by `F_so` (locking + partial order + signals).
    pub so_clauses: usize,
    /// Clauses contributed by `F_mo`.
    pub mo_clauses: usize,
    /// Symbolic value variables (one per shared read).
    pub value_vars: usize,
    /// Order variables (one per SAP).
    pub order_vars: usize,
    /// Binary wait/signal matching variables (`b_x` of §3.2).
    pub match_vars: usize,
}

impl ConstraintStats {
    /// Total clause count.
    pub fn total_clauses(&self) -> usize {
        self.path_clauses + self.rw_clauses + self.so_clauses + self.mo_clauses
    }

    /// Total variable count.
    pub fn total_vars(&self) -> usize {
        self.value_vars + self.order_vars + self.match_vars
    }
}

/// Counts the system using the paper's clause-shape accounting:
///
/// * `F_rw` — per read, each candidate write contributes its ordering
///   literal plus one "no intervening write" disjunct per other aliasing
///   write (the `4·N_r·N_w²` worst case of §4.1);
/// * locking — `2·|S|² + 2·|S|` per mutex (§3.2);
/// * wait/signal — `2·|SG|·|WT| + |SG|`;
/// * `F_mo` — one clause per order edge;
/// * `F_path` — one clause per recorded branch condition plus the bug.
pub fn count(system: &ConstraintSystem<'_>) -> ConstraintStats {
    let trace = system.trace;
    let path_clauses = trace.path_conds.len() + 1;

    let mut rw_clauses = 0usize;
    for r in &system.reads {
        for _cand in &r.candidates {
            // value binding + order literal + exclusion disjuncts
            rw_clauses += 2 + r.aliasing_writes.len().saturating_sub(1);
        }
    }

    let mut so_clauses = 0usize;
    for regions in system.lock_regions.values() {
        let s = regions.len();
        so_clauses += 2 * s * s + 2 * s;
    }
    let mut match_vars = 0usize;
    for w in &system.waits {
        let sg = w.signals.len() + w.broadcasts.len();
        // Each candidate wake-up source gets a binary matching variable.
        match_vars += sg;
        so_clauses += 2 * sg + 1;
    }
    for r in &system.recvs {
        // Send/recv matching mirrors wait/signal: one binary variable per
        // candidate send, plus one for the drained-after-close outcome.
        let cands = r.sends.len() + usize::from(!r.closes.is_empty());
        match_vars += cands;
        so_clauses += 2 * cands + 1;
    }
    // fork/join partial-order edges are part of F_so.
    let fork_join_edges = system.hard_edges.len() - system.mo_edge_count;
    so_clauses += fork_join_edges;

    let stats = ConstraintStats {
        path_clauses,
        rw_clauses,
        so_clauses,
        mo_clauses: system.mo_edge_count,
        value_vars: trace.sym_vars.len(),
        order_vars: trace.sap_count(),
        match_vars,
    };
    // Mirror Table 1's per-class breakdown into the metrics stream.
    let g = |n: usize| i64::try_from(n).unwrap_or(i64::MAX);
    clap_obs::gauge("constrain.path_clauses", g(stats.path_clauses));
    clap_obs::gauge("constrain.rw_clauses", g(stats.rw_clauses));
    clap_obs::gauge("constrain.so_clauses", g(stats.so_clauses));
    clap_obs::gauge("constrain.mo_clauses", g(stats.mo_clauses));
    clap_obs::gauge("constrain.value_vars", g(stats.value_vars));
    clap_obs::gauge("constrain.order_vars", g(stats.order_vars));
    clap_obs::gauge("constrain.match_vars", g(stats.match_vars));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::tests::build_failure;
    use crate::system::ConstraintSystem;
    use clap_vm::MemModel;

    #[test]
    fn counts_scale_with_trace() {
        let small = build_failure(
            "global int x = 0;
             fn w() { let v: int = x; yield; x = v + 1; }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2, \"l\"); }",
            MemModel::Sc,
            500,
        );
        let big = build_failure(
            "global int x = 0;
             fn w() { let i: int = 0; while (i < 5) { let v: int = x; yield; x = v + 1; i = i + 1; } }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 10, \"l\"); }",
            MemModel::Sc,
            3000,
        );
        let ss = count(&ConstraintSystem::build(&small.0, &small.1, MemModel::Sc));
        let bs = count(&ConstraintSystem::build(&big.0, &big.1, MemModel::Sc));
        assert!(bs.total_clauses() > ss.total_clauses());
        assert!(bs.total_vars() > ss.total_vars());
        assert_eq!(ss.order_vars, small.1.sap_count());
        assert_eq!(ss.value_vars, small.1.sym_vars.len());
        // Lost update: 3 reads, 2 writes → rw clauses within the paper's
        // 4·N_r·N_w² worst case.
        assert!(ss.rw_clauses <= 4 * 3 * 2 * 2);
    }

    #[test]
    fn lock_clauses_follow_formula() {
        let (p, t) = build_failure(
            "global int x = 0; mutex m;
             fn w() { lock(m); let v: int = x; yield; x = v + 1; unlock(m); }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; let v: int = x; assert(v == 3, \"never\"); }",
            MemModel::Sc,
            500,
        );
        let sys = ConstraintSystem::build(&p, &t, MemModel::Sc);
        let stats = count(&sys);
        // Two regions on m: 2·2² + 2·2 = 12 lock clauses, plus fork/join
        // edges.
        assert!(stats.so_clauses >= 12);
    }
}
