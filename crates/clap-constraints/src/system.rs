//! Construction of the CLAP execution-constraint system (§3):
//! `F = F_path ∧ F_bug ∧ F_so ∧ F_rw ∧ F_mo`.
//!
//! `F_path` and `F_bug` arrive ready-made in the [`SymTrace`]; this module
//! derives the structural pieces:
//!
//! * **`F_mo`** — memory-order edges per model. SC is full per-thread
//!   program order. For TSO/PSO the model follows the VM's store-buffer
//!   semantics (a *sound refinement* of the paper's textual model — see
//!   DESIGN.md): loads stay in program order and precede later stores
//!   (they execute in order on an in-order core); TSO keeps a single
//!   store chain, PSO keeps one store chain per variable; every read is
//!   pinned between its nearest potentially-aliasing preceding and
//!   following writes of its own thread (store-forwarding, §3.2); sync
//!   operations are full fences.
//! * **`F_so`** — lock regions (mutual exclusion of critical sections),
//!   fork/join partial-order edges, and wait/signal matching candidates.
//! * **`F_rw`** — per read: the candidate writes (plus the initial value)
//!   it may take its value from, with aliasing kept symbolic for array
//!   accesses whose index expressions are not concrete.

use crate::schedule::Schedule;
use clap_ir::{AtomicOrd, ChanId, CondId, GlobalId, MutexId, Program};
use clap_profile as clap_profile_sync;
use clap_symex::{SapId, SapKind, SymAddr, SymTrace, SymVarId, ThreadIdx};
use clap_vm::MemModel;
use std::collections::HashMap;

/// Where a read's value may come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSource {
    /// The location's initial value (no earlier aliasing write).
    Init,
    /// A specific write SAP.
    Write(SapId),
}

/// One read's matching problem (`F_rw` row).
#[derive(Debug, Clone)]
pub struct ReadConstraint {
    /// The read SAP.
    pub read: SapId,
    /// Its symbolic result variable.
    pub var: SymVarId,
    /// The location read.
    pub addr: SymAddr,
    /// Value it observes when matched to [`ReadSource::Init`].
    pub init_value: i64,
    /// Candidate sources (always includes `Init`).
    pub candidates: Vec<ReadSource>,
    /// All potentially-aliasing writes (superset of the write candidates;
    /// the exclusion constraints range over these).
    pub aliasing_writes: Vec<SapId>,
}

/// A lock/unlock critical region (`F_so`, locking constraints).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockRegion {
    /// The acquiring SAP.
    pub lock: SapId,
    /// The releasing SAP; `None` when the region was still open at the
    /// failure (it must then be the last region on its mutex).
    pub unlock: Option<SapId>,
}

/// A wait's matching problem (`F_so`, wait/signal constraints).
#[derive(Debug, Clone)]
pub struct WaitConstraint {
    /// The wait-completion SAP.
    pub wait: SapId,
    /// The wait's release-phase SAP (the unlock that parked the thread).
    pub release: SapId,
    /// Signals that may wake it (consumed exclusively).
    pub signals: Vec<SapId>,
    /// Broadcasts that may wake it (shared by any number of waits).
    pub broadcasts: Vec<SapId>,
}

/// A channel/mailbox receive's matching problem (`F_so`, send/recv
/// matching). Mirrors [`WaitConstraint`]: the solver picks the send the
/// receive observes (consumed exclusively, FIFO legality re-checked by the
/// validator), or — for channel recvs with a close in the trace — the
/// "drained" outcome where a close precedes the recv and it returns `-1`.
#[derive(Debug, Clone)]
pub struct RecvConstraint {
    /// The receive-completion SAP (`recv` or `mailbox_recv`).
    pub recv: SapId,
    /// Its symbolic result variable.
    pub var: SymVarId,
    /// Candidate sends it may take its value from (`send` / `try_send`
    /// SAPs on the same channel, or `mailbox_send`s targeting the thread).
    pub sends: Vec<SapId>,
    /// Close SAPs enabling the `-1` drained outcome (channel recvs only).
    pub closes: Vec<SapId>,
}

/// The assembled constraint system.
#[derive(Debug, Clone)]
pub struct ConstraintSystem<'t> {
    /// The underlying symbolic trace.
    pub trace: &'t SymTrace,
    /// Memory model the constraints encode.
    pub model: MemModel,
    /// Hard order edges: `F_mo` plus fork/join partial order. `(a, b)`
    /// means `O_a < O_b`.
    pub hard_edges: Vec<(SapId, SapId)>,
    /// `F_rw` rows, one per read SAP.
    pub reads: Vec<ReadConstraint>,
    /// Lock regions grouped by mutex.
    pub lock_regions: HashMap<MutexId, Vec<LockRegion>>,
    /// Wait/signal matching, one row per completed wait.
    pub waits: Vec<WaitConstraint>,
    /// Channel/mailbox send-recv matching, one row per completed receive.
    pub recvs: Vec<RecvConstraint>,
    /// Number of hard edges contributed by `F_mo` alone (Table 1 stats).
    pub mo_edge_count: usize,
}

impl<'t> ConstraintSystem<'t> {
    /// Builds the system for `trace` under `model`.
    ///
    /// # Panics
    ///
    /// Panics on malformed traces (an unlock without a lock by the same
    /// thread, a wait completion without its release).
    pub fn build(program: &Program, trace: &'t SymTrace, model: MemModel) -> Self {
        let mut hard_edges = Vec::new();

        // ---- F_mo: per-thread memory order ----
        for thread_saps in &trace.per_thread {
            match model {
                MemModel::Sc => {
                    for w in thread_saps.windows(2) {
                        hard_edges.push((w[0], w[1]));
                    }
                }
                MemModel::Tso | MemModel::Pso => {
                    relaxed_mo(trace, model, thread_saps, &mut hard_edges);
                }
                MemModel::C11 => {
                    c11_mo(trace, thread_saps, &mut hard_edges);
                }
            }
        }
        let mo_edge_count = hard_edges.len();

        // ---- F_so: fork/join partial order ----
        // fork → first SAPs of child; last SAPs of child → join. With the
        // per-thread edges above, each thread's minimal/maximal SAPs under
        // F_mo dominate the rest; for simplicity and soundness we link the
        // child's first and last SAP in program order *and* rely on the
        // fence property of fork/join (they flush) making program-order
        // first/last also F_mo-first/last... which holds because the
        // child's first and last SAPs are reached through the chains that
        // start/end every relaxed F_mo construction. To stay robust we add
        // edges for every child SAP when the child is small, degrading to
        // first/last for large children plus chain coverage.
        for (ti, thread_saps) in trace.per_thread.iter().enumerate() {
            let t = ThreadIdx(ti as u32);
            let _ = t;
            for &s in thread_saps {
                match trace.sap(s).kind {
                    SapKind::Fork { child } | SapKind::SpawnActor { child } => {
                        for &cs in &trace.per_thread[child.index()] {
                            hard_edges.push((s, cs));
                        }
                    }
                    SapKind::Join { child } => {
                        for &cs in &trace.per_thread[child.index()] {
                            hard_edges.push((cs, s));
                        }
                    }
                    _ => {}
                }
            }
        }

        // ---- F_so: lock regions ----
        let mut lock_regions: HashMap<MutexId, Vec<LockRegion>> = HashMap::new();
        for thread_saps in &trace.per_thread {
            // Track the open lock per mutex for this thread.
            let mut open: HashMap<MutexId, SapId> = HashMap::new();
            for &s in thread_saps {
                match trace.sap(s).kind {
                    SapKind::Lock(m) | SapKind::Wait { mutex: m, .. } => {
                        // A wait completion reacquires the mutex: it opens
                        // a region exactly like a lock.
                        let prev = open.insert(m, s);
                        assert!(prev.is_none(), "nested lock of the same mutex");
                    }
                    SapKind::Unlock(m) => {
                        let lock = open.remove(&m).expect("unlock pairs with a lock");
                        lock_regions.entry(m).or_default().push(LockRegion {
                            lock,
                            unlock: Some(s),
                        });
                    }
                    _ => {}
                }
            }
            // Regions still open at the failure point.
            for (m, lock) in open {
                lock_regions
                    .entry(m)
                    .or_default()
                    .push(LockRegion { lock, unlock: None });
            }
        }

        // ---- F_so: wait/signal matching ----
        let mut signals_by_cond: HashMap<CondId, Vec<SapId>> = HashMap::new();
        let mut broadcasts_by_cond: HashMap<CondId, Vec<SapId>> = HashMap::new();
        for (i, sap) in trace.saps.iter().enumerate() {
            match sap.kind {
                SapKind::Signal(c) => signals_by_cond.entry(c).or_default().push(SapId(i as u32)),
                SapKind::Broadcast(c) => broadcasts_by_cond
                    .entry(c)
                    .or_default()
                    .push(SapId(i as u32)),
                _ => {}
            }
        }
        let mut waits = Vec::new();
        for thread_saps in &trace.per_thread {
            for (pos, &s) in thread_saps.iter().enumerate() {
                if let SapKind::Wait { cond, .. } = trace.sap(s).kind {
                    let release = thread_saps[pos.checked_sub(1).expect("wait has a release")];
                    assert!(
                        matches!(trace.sap(release).kind, SapKind::Unlock(_)),
                        "wait completion must follow its release"
                    );
                    let my_thread = trace.sap(s).thread;
                    let other = |id: &&SapId| trace.sap(**id).thread != my_thread;
                    waits.push(WaitConstraint {
                        wait: s,
                        release,
                        signals: signals_by_cond
                            .get(&cond)
                            .map(|v| v.iter().filter(other).copied().collect())
                            .unwrap_or_default(),
                        broadcasts: broadcasts_by_cond
                            .get(&cond)
                            .map(|v| v.iter().filter(other).copied().collect())
                            .unwrap_or_default(),
                    });
                }
            }
        }

        // ---- F_so: channel/mailbox send-recv matching ----
        let mut sends_by_chan: HashMap<ChanId, Vec<SapId>> = HashMap::new();
        let mut closes_by_chan: HashMap<ChanId, Vec<SapId>> = HashMap::new();
        let mut mailbox_sends: HashMap<ThreadIdx, Vec<SapId>> = HashMap::new();
        // Per channel: blocking sends, blocking recvs, and whether try_*
        // or close operations taint the static FIFO analysis below.
        let mut fifo: HashMap<ChanId, (Vec<SapId>, Vec<SapId>, bool)> = HashMap::new();
        for (i, sap) in trace.saps.iter().enumerate() {
            let s = SapId(i as u32);
            match sap.kind {
                SapKind::Send { chan, .. } => {
                    sends_by_chan.entry(chan).or_default().push(s);
                    fifo.entry(chan).or_default().0.push(s);
                }
                SapKind::TrySend { chan, .. } => {
                    sends_by_chan.entry(chan).or_default().push(s);
                    fifo.entry(chan).or_default().2 = true;
                }
                SapKind::Recv { chan, .. } => {
                    fifo.entry(chan).or_default().1.push(s);
                }
                SapKind::TryRecv { chan, .. } => {
                    fifo.entry(chan).or_default().2 = true;
                }
                SapKind::ChanClose(c) => {
                    closes_by_chan.entry(c).or_default().push(s);
                    fifo.entry(c).or_default().2 = true;
                }
                SapKind::MailboxSend { target, .. } => {
                    mailbox_sends.entry(target).or_default().push(s);
                }
                _ => {}
            }
        }
        let mut recvs = Vec::new();
        for (i, sap) in trace.saps.iter().enumerate() {
            let s = SapId(i as u32);
            // A same-thread send program-order after the receive can never
            // be its source (channel ops are fences in every model).
            let po_ok = |w: &&SapId| {
                let ws = trace.sap(**w);
                !(ws.thread == sap.thread && ws.po > sap.po)
            };
            match sap.kind {
                SapKind::Recv { chan, var } => recvs.push(RecvConstraint {
                    recv: s,
                    var,
                    sends: sends_by_chan
                        .get(&chan)
                        .map(|v| v.iter().filter(po_ok).copied().collect())
                        .unwrap_or_default(),
                    closes: closes_by_chan.get(&chan).cloned().unwrap_or_default(),
                }),
                SapKind::MailboxRecv { var } => recvs.push(RecvConstraint {
                    recv: s,
                    var,
                    sends: mailbox_sends
                        .get(&sap.thread)
                        .map(|v| v.iter().filter(po_ok).copied().collect())
                        .unwrap_or_default(),
                    closes: Vec::new(),
                }),
                _ => {}
            }
        }

        // ---- F_so: capacity-induced FIFO edges ----
        // When a channel's traffic is one sending thread and one receiving
        // thread using only blocking send/recv and the channel is never
        // closed, FIFO matching is forced: the k-th send pairs with the
        // k-th recv, and the (k+cap)-th send must wait for the k-th recv
        // to free a slot (cap 0 behaves as the 1-slot rendezvous buffer).
        let mut chans: Vec<_> = fifo.iter().collect();
        chans.sort_by_key(|(c, _)| **c);
        for (chan, (sends, chan_recvs, tainted)) in chans {
            if *tainted {
                continue;
            }
            let one_thread = |v: &[SapId]| {
                v.iter()
                    .map(|&s| trace.sap(s).thread)
                    .collect::<std::collections::HashSet<_>>()
                    .len()
                    <= 1
            };
            if !one_thread(sends) || !one_thread(chan_recvs) {
                continue;
            }
            let cap = program.chans[chan.index()].cap.max(1);
            for k in 0..sends.len().min(chan_recvs.len()) {
                hard_edges.push((sends[k], chan_recvs[k]));
            }
            for k in 0..chan_recvs.len() {
                if k + cap < sends.len() {
                    hard_edges.push((chan_recvs[k], sends[k + cap]));
                }
            }
        }

        // ---- F_rw: read-write matching ----
        // Plain reads match plain writes; atomic reads (loads plus the
        // read half of RMW/CAS) match atomic writes. The two pools never
        // mix because an atomic declaration is its own global, reachable
        // only through atomic operations. Atomics are always scalar, so
        // their address carries no index.
        let mut writes_by_global: HashMap<GlobalId, Vec<SapId>> = HashMap::new();
        for (i, sap) in trace.saps.iter().enumerate() {
            if let Some(addr) = write_addr(&sap.kind) {
                writes_by_global
                    .entry(addr.global)
                    .or_default()
                    .push(SapId(i as u32));
            }
        }
        let mut reads = Vec::new();
        for (i, sap) in trace.saps.iter().enumerate() {
            let (addr, var) = match sap.kind {
                SapKind::Read { addr, var } => (addr, var),
                SapKind::AtomicLoad { global, var, .. }
                | SapKind::AtomicRmw { global, var, .. }
                | SapKind::AtomicCas { global, var, .. } => (atomic_addr(global), var),
                _ => continue,
            };
            let read = SapId(i as u32);
            let empty = Vec::new();
            let glob_writes = writes_by_global.get(&addr.global).unwrap_or(&empty);
            let mut aliasing = Vec::new();
            let mut candidates = vec![ReadSource::Init];
            for &w in glob_writes {
                // An RMW/CAS is both a read and a write in one SAP: its
                // own write can never be its read's source, nor count as
                // an intervening write between the source and the read —
                // which is exactly what makes the read-modify-write
                // indivisible in the modification order.
                if w == read {
                    continue;
                }
                let waddr = write_addr(&trace.sap(w).kind).expect("collected as a write");
                if !may_alias(trace, addr, waddr) {
                    continue;
                }
                aliasing.push(w);
                // A same-thread write that is program-order after the read
                // can never be its source (reads precede later writes in
                // every model we support).
                let same_thread_later =
                    trace.sap(w).thread == sap.thread && trace.sap(w).po > sap.po;
                if !same_thread_later {
                    candidates.push(ReadSource::Write(w));
                }
            }
            reads.push(ReadConstraint {
                read,
                var,
                addr,
                init_value: init_value_of(program, trace, addr),
                candidates,
                aliasing_writes: aliasing,
            });
        }

        ConstraintSystem {
            trace,
            model,
            hard_edges,
            reads,
            lock_regions,
            waits,
            recvs,
            mo_edge_count,
        }
    }

    /// The read constraint for a symbolic variable.
    pub fn read_for_var(&self, var: SymVarId) -> &ReadConstraint {
        self.reads
            .iter()
            .find(|r| r.var == var)
            .expect("every var has a read")
    }

    /// Checks a *hard-edge-only* property: whether `schedule` respects
    /// `F_mo` and the fork/join partial order.
    pub fn respects_hard_edges(&self, schedule: &Schedule) -> bool {
        let pos = schedule.positions();
        self.hard_edges
            .iter()
            .all(|&(a, b)| pos[a.index()] < pos[b.index()])
    }
}

/// The address of an atomic location (always a scalar global).
fn atomic_addr(global: GlobalId) -> SymAddr {
    SymAddr {
        global,
        index: None,
    }
}

/// The location a SAP writes, when it writes one (plain stores and the
/// write half of every atomic write — a failed CAS still rewrites the old
/// value, keeping it in the modification order).
pub(crate) fn write_addr(kind: &SapKind) -> Option<SymAddr> {
    match *kind {
        SapKind::Write { addr, .. } => Some(addr),
        SapKind::AtomicStore { global, .. }
        | SapKind::AtomicRmw { global, .. }
        | SapKind::AtomicCas { global, .. } => Some(atomic_addr(global)),
        _ => None,
    }
}

/// Conservative alias test between a read's and a write's location.
fn may_alias(trace: &SymTrace, a: SymAddr, b: SymAddr) -> bool {
    if a.global != b.global {
        return false;
    }
    match (a.index, b.index) {
        (None, None) => true,
        (Some(ia), Some(ib)) => {
            match (trace.arena.as_const(ia), trace.arena.as_const(ib)) {
                (Some(x), Some(y)) => x == y,
                _ => true, // symbolic index: maybe
            }
        }
        // One indexed, one scalar access of the same global cannot happen
        // (the type checker separates arrays and scalars).
        _ => unreachable!("mixed scalar/array access of one global"),
    }
}

fn init_value_of(program: &Program, trace: &SymTrace, addr: SymAddr) -> i64 {
    let _ = trace;
    SymTrace::init_value(program, addr.global)
}

/// Emits the relaxed memory-order edges for one thread (TSO/PSO).
fn relaxed_mo(trace: &SymTrace, model: MemModel, saps: &[SapId], edges: &mut Vec<(SapId, SapId)>) {
    let mut last_read: Option<SapId> = None;
    // TSO: one chain over all writes. PSO: one chain per global.
    let mut last_write_tso: Option<SapId> = None;
    let mut last_write_pso: HashMap<GlobalId, SapId> = HashMap::new();
    // For the forwarding edges: all writes seen so far (to find the
    // nearest potentially-aliasing one), and pending reads waiting for
    // their next aliasing write.
    let mut writes_so_far: Vec<(SapId, SymAddr)> = Vec::new();
    let mut pending_reads: Vec<(SapId, SymAddr)> = Vec::new();
    // Fence handling: SAPs since the last fence, and the last fence.
    let mut since_fence: Vec<SapId> = Vec::new();
    let mut last_fence: Option<SapId> = None;

    for &s in saps {
        let kind = trace.sap(s).kind;
        match kind {
            SapKind::Read { addr, .. } => {
                if let Some(r) = last_read {
                    edges.push((r, s));
                }
                last_read = Some(s);
                // Nearest potentially-aliasing earlier write (since the
                // last fence; fences already order everything older).
                if let Some(&(w, _)) = writes_so_far
                    .iter()
                    .rev()
                    .find(|(_, wa)| may_alias(trace, addr, *wa))
                {
                    edges.push((w, s));
                }
                pending_reads.push((s, addr));
                if let Some(f) = last_fence {
                    edges.push((f, s));
                }
                since_fence.push(s);
            }
            SapKind::Write { addr, .. } => {
                // Loads execute in program order before later stores.
                if let Some(r) = last_read {
                    edges.push((r, s));
                }
                match model {
                    MemModel::Tso => {
                        if let Some(w) = last_write_tso {
                            edges.push((w, s));
                        }
                        last_write_tso = Some(s);
                    }
                    MemModel::Pso => {
                        if let Some(&w) = last_write_pso.get(&addr.global) {
                            edges.push((w, s));
                        }
                        last_write_pso.insert(addr.global, s);
                    }
                    MemModel::Sc | MemModel::C11 => unreachable!("relaxed_mo only for TSO/PSO"),
                }
                // Reads before their next potentially-aliasing write.
                pending_reads.retain(|&(r, ra)| {
                    if may_alias(trace, ra, addr) {
                        edges.push((r, s));
                        false
                    } else {
                        true
                    }
                });
                writes_so_far.push((s, addr));
                if let Some(f) = last_fence {
                    edges.push((f, s));
                }
                since_fence.push(s);
            }
            _ => {
                // Synchronization SAP: a full fence.
                for &m in &since_fence {
                    edges.push((m, s));
                }
                if let Some(f) = last_fence {
                    edges.push((f, s));
                }
                since_fence.clear();
                last_fence = Some(s);
                // The fence dominates everything before it; restart the
                // chains from the fence itself by clearing state (edges
                // from the fence to subsequent SAPs are added above).
                last_read = None;
                last_write_tso = None;
                last_write_pso.clear();
                writes_so_far.clear();
                pending_reads.clear();
            }
        }
    }
}

/// Emits the C11 memory-order edges for one thread, mirroring the VM's
/// semantics: plain accesses are SC among themselves, `seq_cst` atomics
/// and sync operations are full fences, and relaxed/acquire/release
/// atomic stores are the only delayed operations — their order variable
/// stands for the *commit* (drain) time, bounded below by the issue point
/// and chained per location (per-location modification order). A release
/// store additionally commits after every earlier pending store of its
/// thread (the VM drains a release entry only when it is the oldest
/// buffer entry). Relaxed/acquire RMW and CAS flush the FIFO prefix up
/// to their own location before reading, so they are ordered after every
/// earlier same-thread pending store up to (and including) the last one
/// to their location. Store-to-load forwarding is pinned with a hard
/// edge from the nearest pending same-location store to the load — an
/// over-approximation of the buffer-forwarding semantics whose
/// incompleteness is covered by the atomics soundness valve.
fn c11_mo(trace: &SymTrace, saps: &[SapId], edges: &mut Vec<(SapId, SapId)>) {
    // The chain of operations that execute at their program position.
    let mut last_immediate: Option<SapId> = None;
    // Currently-pending (buffered) atomic stores, in issue order.
    let mut buffered: Vec<(SapId, GlobalId)> = Vec::new();
    // Latest pending store per location (per-location FIFO chain head).
    let mut last_store: HashMap<GlobalId, SapId> = HashMap::new();
    // Atomic loads awaiting their location's next same-thread write (the
    // read half of the forwarding pin).
    let mut pending_loads: Vec<(SapId, GlobalId)> = Vec::new();

    for &s in saps {
        let kind = trace.sap(s).kind;
        if let SapKind::AtomicStore { global, ord, .. } = kind {
            if ord != AtomicOrd::SeqCst {
                // Delayed store: commits no earlier than its issue point…
                if let Some(p) = last_immediate {
                    edges.push((p, s));
                }
                // …after the previous pending store to the same location…
                if let Some(&w) = last_store.get(&global) {
                    edges.push((w, s));
                }
                // …and, for release, after every earlier pending store.
                if ord == AtomicOrd::Release {
                    for &(b, _) in &buffered {
                        edges.push((b, s));
                    }
                }
                // Earlier same-location loads read before this write.
                pending_loads.retain(|&(r, g)| {
                    if g == global {
                        edges.push((r, s));
                        false
                    } else {
                        true
                    }
                });
                last_store.insert(global, s);
                buffered.push((s, global));
                continue;
            }
        }

        // Everything else executes at its program position.
        if let Some(p) = last_immediate {
            edges.push((p, s));
        }
        last_immediate = Some(s);

        let full_fence = match kind {
            SapKind::Read { .. } | SapKind::Write { .. } => false,
            SapKind::AtomicLoad { ord, .. } | SapKind::AtomicStore { ord, .. } => {
                ord == AtomicOrd::SeqCst
            }
            SapKind::AtomicRmw { ord, .. } | SapKind::AtomicCas { ord, .. } => {
                matches!(ord, AtomicOrd::Release | AtomicOrd::SeqCst)
            }
            // Sync operations flush the buffer in every model.
            _ => true,
        };
        if full_fence {
            for &(b, _) in &buffered {
                edges.push((b, s));
            }
            buffered.clear();
            last_store.clear();
            // Later writes are ordered after the fence, hence after the
            // pending loads, transitively.
            pending_loads.clear();
            continue;
        }

        match kind {
            SapKind::AtomicLoad { global, .. } => {
                // Forwarding pin: a pending same-location store is what
                // the load observes in the VM.
                if let Some(&w) = last_store.get(&global) {
                    edges.push((w, s));
                }
                pending_loads.push((s, global));
            }
            SapKind::AtomicRmw { global, .. } | SapKind::AtomicCas { global, .. } => {
                // Partial fence: drain the FIFO prefix up to the last
                // pending store to this location.
                if let Some(last_idx) = buffered.iter().rposition(|&(_, g)| g == global) {
                    for &(b, _) in &buffered[..=last_idx] {
                        edges.push((b, s));
                    }
                    buffered.drain(..=last_idx);
                    last_store.retain(|g, _| buffered.iter().any(|&(_, bg)| bg == *g));
                }
                pending_loads.retain(|&(r, g)| {
                    if g == global {
                        edges.push((r, s));
                        false
                    } else {
                        true
                    }
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use clap_analysis::analyze;
    use clap_ir::parse;
    use clap_profile::{decode_log, BlTables, PathRecorder};
    use clap_symex::{execute, FailureContext};
    use clap_vm::{Outcome, RandomScheduler, Vm};

    pub(crate) fn build_failure(
        src: &str,
        model: MemModel,
        max_seed: u64,
    ) -> (clap_ir::Program, SymTrace) {
        let program = parse(src).unwrap();
        let sharing = analyze(&program);
        let tables = BlTables::build(&program);
        let mut vm = Vm::with_shared(&program, model, sharing.shared_spec());
        for seed in 0..max_seed {
            vm.reset();
            let mut rec = PathRecorder::new(&tables);
            let outcome = vm.run(&mut RandomScheduler::new(seed), &mut rec);
            if let Outcome::AssertFailed { .. } = outcome {
                let failure = FailureContext::from_vm(&vm);
                let paths = decode_log(&program, &tables, &rec.finish()).unwrap();
                let trace = execute(&program, &sharing.shared_spec(), &paths, &failure).unwrap();
                return (program, trace);
            }
        }
        panic!("no failing seed in 0..{max_seed}");
    }

    const LOST_UPDATE: &str = "global int x = 0;
         fn w() { let v: int = x; yield; x = v + 1; }
         fn main() { let a: thread = fork w(); let b: thread = fork w();
                     join a; join b; assert(x == 2, \"lost\"); }";

    #[test]
    fn sc_mo_is_per_thread_chain() {
        let (program, trace) = build_failure(LOST_UPDATE, MemModel::Sc, 500);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let expected: usize = trace
            .per_thread
            .iter()
            .map(|t| t.len().saturating_sub(1))
            .sum();
        assert_eq!(sys.mo_edge_count, expected);
    }

    #[test]
    fn reads_have_init_and_write_candidates() {
        let (program, trace) = build_failure(LOST_UPDATE, MemModel::Sc, 500);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        // Three reads of x: one per worker plus the assert's.
        assert_eq!(sys.reads.len(), 3);
        for r in &sys.reads {
            assert!(r.candidates.contains(&ReadSource::Init));
            // Two writes exist; a worker's own write is pruned (later in
            // program order), main's read keeps both.
            assert!(r.candidates.len() >= 2, "{r:?}");
            assert_eq!(r.init_value, 0);
        }
        let main_read = sys
            .reads
            .iter()
            .find(|r| trace.sap(r.read).thread == ThreadIdx(0))
            .unwrap();
        assert_eq!(main_read.candidates.len(), 3, "init + both writes");
    }

    #[test]
    fn fork_join_edges_cover_children() {
        let (program, trace) = build_failure(LOST_UPDATE, MemModel::Sc, 500);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        // Every child SAP is ordered after a fork and before a join.
        let forks: Vec<SapId> = (0..trace.sap_count() as u32)
            .map(SapId)
            .filter(|&s| matches!(trace.sap(s).kind, SapKind::Fork { .. }))
            .collect();
        assert_eq!(forks.len(), 2);
        for &cs in &trace.per_thread[1] {
            assert!(sys
                .hard_edges
                .iter()
                .any(|&(a, b)| a == forks[0] && b == cs));
        }
    }

    #[test]
    fn lock_regions_extracted() {
        let src = "global int x = 0; mutex m;
             fn w() { lock(m); let v: int = x; x = v + 1; unlock(m); yield; let u: int = x; yield; x = u + 1; }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 4, \"lost\"); }";
        let (program, trace) = build_failure(src, MemModel::Sc, 3000);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let m = program.mutex_by_name("m").unwrap();
        let regions = &sys.lock_regions[&m];
        assert_eq!(regions.len(), 2);
        assert!(regions.iter().all(|r| r.unlock.is_some()));
    }

    #[test]
    fn open_lock_region_when_failing_inside_critical_section() {
        let src = "global int x = 0; mutex m;
             fn w() { x = 1; }
             fn main() { let t: thread = fork w(); lock(m); let v: int = x;
                         assert(v == 0, \"raced\"); unlock(m); join t; }";
        let (program, trace) = build_failure(src, MemModel::Sc, 500);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let m = program.mutex_by_name("m").unwrap();
        let regions = &sys.lock_regions[&m];
        assert_eq!(regions.len(), 1);
        assert!(regions[0].unlock.is_none(), "region open at failure");
    }

    #[test]
    fn wait_constraints_reference_release_and_signals() {
        let src = "global int ready = 0; global int order = 0; mutex m; cond c;
             fn consumer() {
                 lock(m);
                 while (ready == 0) { wait(c, m); }
                 unlock(m);
                 order = 1;
             }
             fn main() {
                 let t: thread = fork consumer();
                 lock(m); ready = 1; signal(c); unlock(m);
                 join t;
                 let o: int = order;
                 assert(o == 0, \"consumer ran\");
             }";
        let (program, trace) = build_failure(src, MemModel::Sc, 500);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        // The consumer may or may not have parked before the signal in the
        // failing run; when it did, the wait row must exist and be sane.
        for w in &sys.waits {
            assert!(matches!(trace.sap(w.release).kind, SapKind::Unlock(_)));
            assert!(!w.signals.is_empty());
        }
    }

    #[test]
    fn tso_relaxes_w_r_but_not_r_w() {
        let src = "global int x = 0; global int y = 0;
             global int r1 = -1; global int r2 = -1;
             fn t1() { x = 1; r1 = y; }
             fn t2() { y = 1; r2 = x; }
             fn main() {
                 let a: thread = fork t1(); let b: thread = fork t2();
                 join a; join b;
                 assert(r1 + r2 > 0, \"SB\");
             }";
        let (program, trace) = build_failure(src, MemModel::Tso, 500);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Tso);
        // Thread 1's SAPs: write x, read y, write r1. The W(x) → R(y)
        // pair must NOT be ordered; R(y) → W(r1) must be.
        let t1 = &trace.per_thread[1];
        let (wx, ry, wr1) = (t1[0], t1[1], t1[2]);
        assert!(matches!(trace.sap(wx).kind, SapKind::Write { .. }));
        assert!(matches!(trace.sap(ry).kind, SapKind::Read { .. }));
        assert!(!sys.hard_edges.contains(&(wx, ry)), "TSO relaxes W→R");
        assert!(sys.hard_edges.contains(&(ry, wr1)), "TSO keeps R→W");
        // And the write chain: W(x) → W(r1).
        assert!(sys.hard_edges.contains(&(wx, wr1)), "TSO keeps W→W");
    }

    #[test]
    fn pso_relaxes_w_w_across_variables() {
        let src = "global int data = 0; global int flag = 0; global int seen = -1;
             fn writer() { data = 1; flag = 1; }
             fn reader() { let f: int = flag; if (f == 1) { seen = data; } }
             fn main() {
                 let w: thread = fork writer(); let r: thread = fork reader();
                 join w; join r;
                 assert(seen != 0, \"MP\");
             }";
        let (program, trace) = build_failure(src, MemModel::Pso, 6000);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Pso);
        let writer = &trace.per_thread[1];
        let (wd, wf) = (writer[0], writer[1]);
        assert!(
            !sys.hard_edges.contains(&(wd, wf)),
            "PSO relaxes W→W across variables"
        );
        // Under TSO the same pair is ordered.
        let sys_tso = ConstraintSystem::build(&program, &trace, MemModel::Tso);
        assert!(sys_tso.hard_edges.contains(&(wd, wf)));
    }

    #[test]
    fn fences_restore_order() {
        let src = "global int data = 0; global int flag = 0; global int seen = -1; mutex m;
             fn writer() { data = 1; lock(m); unlock(m); flag = 1; }
             fn reader() { let f: int = flag; if (f == 1) { seen = data; } }
             fn main() {
                 let w: thread = fork writer(); let r: thread = fork reader();
                 join w; join r;
                 let s: int = seen;
                 assert(s == 0 - 1, \"reader saw flag\"); }";
        let (program, trace) = build_failure(src, MemModel::Pso, 6000);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Pso);
        // data=1 → lock (fence) → flag=1 must be transitively ordered.
        let writer = &trace.per_thread[1];
        let wd = writer[0];
        let lock = writer[1];
        let wf = *writer.last().unwrap();
        assert!(sys.hard_edges.contains(&(wd, lock)));
        assert!(sys.hard_edges.contains(&(lock, wf)) || sys.hard_edges.contains(&(writer[2], wf)));
    }

    const CHAN_LOST_CLOSE: &str = "global int sum = 0;
         chan ch(1);
         fn producer() { send(ch, 5); send(ch, 7); }
         fn consumer() {
             let a: int = recv(ch);
             let b: int = recv(ch);
             sum = a + b;
         }
         fn main() {
             let p: thread = fork producer();
             let c: thread = fork consumer();
             close(ch);
             join p; join c;
             assert(sum == 12, \"lost send\");
         }";

    #[test]
    fn recv_constraints_list_sends_and_closes() {
        let (program, trace) = build_failure(CHAN_LOST_CLOSE, MemModel::Sc, 2000);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        // Every completed recv gets a row; each row's candidates are
        // exactly the trace's sends on that channel, and the close SAP
        // enables the drained `-1` outcome.
        assert!(!sys.recvs.is_empty(), "completed recvs must produce rows");
        for rc in &sys.recvs {
            assert!(matches!(trace.sap(rc.recv).kind, SapKind::Recv { .. }));
            for &s in &rc.sends {
                assert!(matches!(
                    trace.sap(s).kind,
                    SapKind::Send { .. } | SapKind::TrySend { .. }
                ));
            }
            assert_eq!(rc.closes.len(), 1, "one close in the program");
            assert!(matches!(
                trace.sap(rc.closes[0]).kind,
                SapKind::ChanClose(_)
            ));
        }
    }

    #[test]
    fn mailbox_recvs_match_only_their_targeted_sends() {
        let src = "global int got = 0;
             fn act() {
                 let a: int = mailbox_recv();
                 got = a;
             }
             fn main() {
                 let h: thread = spawn_actor act();
                 mailbox_send(h, 3);
                 let snap: int = got;
                 join h;
                 assert(snap == 3, \"actor raced main\");
             }";
        let (program, trace) = build_failure(src, MemModel::Sc, 2000);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let rows: Vec<_> = sys
            .recvs
            .iter()
            .filter(|rc| matches!(trace.sap(rc.recv).kind, SapKind::MailboxRecv { .. }))
            .collect();
        assert!(
            !rows.is_empty(),
            "completed mailbox recv must produce a row"
        );
        for rc in rows {
            let me = trace.sap(rc.recv).thread;
            assert!(rc.closes.is_empty(), "mailboxes have no close");
            assert!(!rc.sends.is_empty());
            for &s in &rc.sends {
                let SapKind::MailboxSend { target, .. } = trace.sap(s).kind else {
                    panic!("mailbox candidates must be mailbox sends");
                };
                assert_eq!(target, me, "candidate targets the receiving actor");
            }
        }
    }

    #[test]
    fn fifo_capacity_edges_for_untainted_two_thread_channel() {
        // One sending thread, one receiving thread, blocking ops only,
        // never closed: the k-th send must precede the k-th recv, and
        // the (k+cap)-th send must follow the k-th recv.
        let src = "global int sum = 0; global int x = 0;
             chan ch(1);
             fn producer() { send(ch, 5); send(ch, 7); x = 1; }
             fn consumer() {
                 let a: int = recv(ch);
                 let b: int = recv(ch);
                 sum = a + b;
             }
             fn main() {
                 let p: thread = fork producer();
                 let c: thread = fork consumer();
                 join p; join c;
                 let r: int = x;
                 assert(sum == 12 && r == 0, \"always fails: x is 1\");
             }";
        let (program, trace) = build_failure(src, MemModel::Sc, 2000);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let sends: Vec<SapId> = trace
            .saps
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind, SapKind::Send { .. }))
            .map(|(i, _)| SapId(i as u32))
            .collect();
        let recvs: Vec<SapId> = trace
            .saps
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind, SapKind::Recv { .. }))
            .map(|(i, _)| SapId(i as u32))
            .collect();
        assert_eq!((sends.len(), recvs.len()), (2, 2));
        assert!(sys.hard_edges.contains(&(sends[0], recvs[0])));
        assert!(sys.hard_edges.contains(&(sends[1], recvs[1])));
        // cap 1: the second send needs the first recv's slot.
        assert!(sys.hard_edges.contains(&(recvs[0], sends[1])));
    }

    #[test]
    fn closed_channels_get_no_fifo_edges() {
        // The close taints the static FIFO analysis: a recv may drain
        // `-1` instead of pairing with a send, so no forced edges.
        let (program, trace) = build_failure(CHAN_LOST_CLOSE, MemModel::Sc, 2000);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let sends: Vec<SapId> = trace
            .saps
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind, SapKind::Send { .. }))
            .map(|(i, _)| SapId(i as u32))
            .collect();
        let recvs: Vec<SapId> = trace
            .saps
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind, SapKind::Recv { .. }))
            .map(|(i, _)| SapId(i as u32))
            .collect();
        for &s in &sends {
            for &r in &recvs {
                assert!(!sys.hard_edges.contains(&(s, r)), "no forced send→recv");
                assert!(!sys.hard_edges.contains(&(r, s)), "no forced recv→send");
            }
        }
    }
}

/// Errors when a recorded synchronization order does not match the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncOrderMismatch(pub String);

impl std::fmt::Display for SyncOrderMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sync-order log mismatch: {}", self.0)
    }
}

impl std::error::Error for SyncOrderMismatch {}

impl<'t> ConstraintSystem<'t> {
    /// Applies a recorded synchronization order (the §6.4 variant): each
    /// object's observed operation sequence becomes a chain of hard
    /// edges, collapsing the quadratic locking and wait/signal matching
    /// search to the recorded resolution. Returns the number of edges
    /// added.
    ///
    /// # Errors
    ///
    /// Returns [`SyncOrderMismatch`] when a logged `(lineage, po)` pair
    /// does not name a SAP of the trace (artifacts from different runs).
    pub fn apply_sync_order(
        &mut self,
        log: &clap_profile_sync::SyncOrderLog,
    ) -> Result<usize, SyncOrderMismatch> {
        use std::collections::HashMap as Map;
        let lineage_to_thread: Map<String, usize> = self
            .trace
            .lineages
            .iter()
            .enumerate()
            .map(|(i, l)| (l.to_string(), i))
            .collect();
        let resolve = |r: &clap_profile_sync::SapRef| -> Result<SapId, SyncOrderMismatch> {
            let t = *lineage_to_thread
                .get(&r.lineage.to_string())
                .ok_or_else(|| SyncOrderMismatch(format!("unknown thread {}", r.lineage)))?;
            self.trace.per_thread[t]
                .get(r.po as usize)
                .copied()
                .ok_or_else(|| {
                    SyncOrderMismatch(format!("thread {} has no SAP #{}", r.lineage, r.po))
                })
        };
        let mut added = 0usize;
        let mut objects: Vec<_> = log.orders.iter().collect();
        objects.sort_by_key(|(o, _)| **o);
        for (_, refs) in objects {
            for w in refs.windows(2) {
                let a = resolve(&w[0])?;
                let b = resolve(&w[1])?;
                self.hard_edges.push((a, b));
                added += 1;
            }
        }
        Ok(added)
    }
}
