//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. `ablation_memmodel` — exploration cost to the first failure under
//!    SC/TSO/PSO (store-buffer drains as scheduler events make
//!    relaxed-model bugs explorable at all);
//! 2. `ablation_csbound` — the preemption bound's effect on the parallel
//!    engine (enumerating low bounds first is what makes minimal-cs
//!    schedules cheap);
//! 3. `ablation_pruning` — generator prefix pruning vs the paper's blind
//!    generate-then-validate split.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clap_bench::workload_config;
use clap_constraints::{validate, ConstraintSystem, Schedule};
use clap_core::Pipeline;
use clap_parallel::{for_each_csp_set, solve_parallel, Generator, ParallelConfig};
use clap_vm::{MemModel, NullMonitor, RandomScheduler, Vm};

fn memmodel(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_memmodel");
    group.sample_size(10);
    // Time to sweep a fixed seed range; under SC dekker never fails, so
    // this measures pure exploration cost per model.
    let workload = clap_workloads::by_name("dekker").expect("dekker exists");
    let program = workload.program();
    for model in [MemModel::Sc, MemModel::Tso, MemModel::Pso] {
        group.bench_with_input(
            BenchmarkId::new("sweep100", model.to_string()),
            &model,
            |b, &m| {
                b.iter(|| {
                    let mut failures = 0u32;
                    for seed in 0..100 {
                        let mut vm = Vm::new(&program, m);
                        vm.set_step_limit(500_000);
                        let mut sched = RandomScheduler::with_stickiness(seed, 0.9);
                        if vm.run(&mut sched, &mut NullMonitor).is_failure() {
                            failures += 1;
                        }
                    }
                    black_box(failures)
                })
            },
        );
    }
    group.finish();
}

fn csbound(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_csbound");
    group.sample_size(10);
    let workload = clap_workloads::by_name("sim_race").expect("sim_race exists");
    let pipeline = Pipeline::new(workload.program());
    let config = workload_config(&workload);
    let recorded = pipeline.record_failure(&config).expect("fails");
    let trace = pipeline.symbolic_trace(&recorded).expect("trace");
    let system = ConstraintSystem::build(pipeline.program(), &trace, workload.model);
    for max_cs in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("max_cs", max_cs), &max_cs, |b, &max_cs| {
            b.iter(|| {
                black_box(solve_parallel(
                    pipeline.program(),
                    &system,
                    ParallelConfig {
                        max_cs,
                        ..ParallelConfig::default()
                    },
                ))
            })
        });
    }
    group.finish();
}

fn pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pruning");
    group.sample_size(10);
    let workload = clap_workloads::by_name("peterson").expect("peterson exists");
    let pipeline = Pipeline::new(workload.program());
    let config = workload_config(&workload);
    let recorded = pipeline.record_failure(&config).expect("fails");
    let trace = pipeline.symbolic_trace(&recorded).expect("trace");
    let system = ConstraintSystem::build(pipeline.program(), &trace, workload.model);

    // Generate + validate one level-1 batch, with and without pruning.
    let run = |gen: &mut Generator<'_, '_>| {
        let mut good = 0u64;
        let mut generated = 0u64;
        for_each_csp_set(&system, 1, 200, &mut |set| {
            gen.run(set, &mut |order| {
                generated += 1;
                let s = Schedule {
                    order: order.to_vec(),
                };
                if validate(pipeline.program(), &system, &s).is_ok() {
                    good += 1;
                }
                generated < 20_000
            })
        });
        (generated, good)
    };
    group.bench_function("with_pruning", |b| {
        b.iter(|| {
            let mut gen = Generator::new(pipeline.program(), &system, 20_000);
            black_box(run(&mut gen))
        })
    });
    group.bench_function("without_pruning", |b| {
        b.iter(|| {
            let mut gen = Generator::without_pruning(&system, 20_000);
            black_box(run(&mut gen))
        })
    });
    group.finish();
}

fn syncorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_syncorder");
    group.sample_size(10);
    // The §6.4 variant: recording the sync order collapses the locking /
    // wait-matching search. Compare sequential solve time on the same
    // recorded failure with and without the extra chains.
    let workload = clap_workloads::by_name("pbzip2").expect("pbzip2 exists");
    let pipeline = Pipeline::new(workload.program());
    let mut config = workload_config(&workload);
    config.record_sync_order = true;
    let recorded = pipeline.record_failure(&config).expect("fails");
    let trace = pipeline.symbolic_trace(&recorded).expect("trace");
    let plain = ConstraintSystem::build(pipeline.program(), &trace, workload.model);
    let mut chained = plain.clone();
    chained
        .apply_sync_order(recorded.sync_order.as_ref().expect("sync order"))
        .expect("log matches trace");

    group.bench_function("paths_only", |b| {
        b.iter(|| {
            black_box(clap_solver::solve(
                pipeline.program(),
                &plain,
                clap_solver::SolverConfig::default(),
            ))
        })
    });
    group.bench_function("paths_plus_sync_order", |b| {
        b.iter(|| {
            black_box(clap_solver::solve(
                pipeline.program(),
                &chained,
                clap_solver::SolverConfig::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, memmodel, csbound, pruning, syncorder);
criterion_main!(benches);
