//! The `exploration` criterion group: wall clock of the record-phase
//! seed sweep ([`Pipeline::record_failure`]) at 1/2/4/8 workers.
//!
//! Budgets are trimmed below the workloads' hunting budgets so one
//! iteration stays short; the sweep still finds and selects failure
//! candidates on every workload benched here.

use clap_bench::workload_config;
use clap_core::Pipeline;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("exploration");
    group.sample_size(10);
    for name in ["sim_race", "pbzip2", "bakery"] {
        let workload = clap_workloads::by_name(name).expect("workload exists");
        let pipeline = Pipeline::new(workload.program());
        let mut config = workload_config(&workload);
        config.seed_budget = config.seed_budget.min(400);
        for workers in [1usize, 2, 4, 8] {
            config.explore_workers = workers;
            let config = config.clone();
            group.bench_function(BenchmarkId::new(name, workers), |b| {
                b.iter(|| black_box(pipeline.record_failure(&config).ok()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, exploration);
criterion_main!(benches);
