//! Criterion form of Table 2: per-workload recording overhead, native vs
//! the CLAP path recorder vs the LEAP access-vector recorder.
//!
//! The identical seeded execution runs under all three monitors, so the
//! difference is purely instrumentation cost — the quantity the paper's
//! Table 2 reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clap_leap::LeapRecorder;
use clap_profile::{BlTables, PathRecorder};
use clap_vm::{NullMonitor, RandomScheduler, Vm};

fn recording(c: &mut Criterion) {
    let mut group = c.benchmark_group("recording_overhead");
    group.sample_size(20);
    for workload in clap_workloads::table2_suite() {
        // racey is the slowest; skip the heaviest rows to keep the whole
        // suite under a minute — the table2 binary covers everything.
        if !matches!(workload.name, "sim_race" | "pfscan" | "racey" | "dekker") {
            continue;
        }
        let program = workload.program();
        let tables = BlTables::build(&program);
        group.bench_with_input(
            BenchmarkId::new("native", workload.name),
            &program,
            |b, program| {
                b.iter(|| {
                    let mut vm = Vm::new(program, workload.model);
                    vm.set_step_limit(4_000_000);
                    let mut sched = RandomScheduler::with_stickiness(7, 0.7);
                    black_box(vm.run(&mut sched, &mut NullMonitor))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("clap", workload.name),
            &program,
            |b, program| {
                b.iter(|| {
                    let mut vm = Vm::new(program, workload.model);
                    vm.set_step_limit(4_000_000);
                    let mut sched = RandomScheduler::with_stickiness(7, 0.7);
                    let mut rec = PathRecorder::new(&tables);
                    vm.run(&mut sched, &mut rec);
                    black_box(rec.finish().size_bytes())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("leap", workload.name),
            &program,
            |b, program| {
                b.iter(|| {
                    let mut vm = Vm::new(program, workload.model);
                    vm.set_step_limit(4_000_000);
                    let mut sched = RandomScheduler::with_stickiness(7, 0.7);
                    let mut rec = LeapRecorder::new();
                    vm.run(&mut sched, &mut rec);
                    black_box(rec.finish().size_bytes())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, recording);
criterion_main!(benches);
