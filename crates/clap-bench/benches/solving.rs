//! Criterion form of Table 3's solve-time comparison: the sequential
//! DPLL(T)-style solver vs the §4.3 parallel generate-and-validate
//! engine, on the recorded failure of each selected workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clap_bench::workload_config;
use clap_constraints::ConstraintSystem;
use clap_core::Pipeline;
use clap_parallel::{solve_parallel, ParallelConfig};
use clap_solver::{solve, SolverConfig};

fn solving(c: &mut Criterion) {
    let mut group = c.benchmark_group("solving");
    group.sample_size(10);
    for name in ["sim_race", "pfscan", "dekker", "racey"] {
        let workload = clap_workloads::by_name(name).expect("workload exists");
        let pipeline = Pipeline::new(workload.program());
        let config = workload_config(&workload);
        let recorded = pipeline.record_failure(&config).expect("workload fails");
        let trace = pipeline.symbolic_trace(&recorded).expect("trace builds");
        let system = ConstraintSystem::build(pipeline.program(), &trace, workload.model);

        group.bench_function(BenchmarkId::new("sequential", name), |b| {
            b.iter(|| black_box(solve(pipeline.program(), &system, SolverConfig::default())))
        });
        group.bench_function(BenchmarkId::new("parallel", name), |b| {
            b.iter(|| {
                black_box(solve_parallel(
                    pipeline.program(),
                    &system,
                    ParallelConfig::default(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, solving);
criterion_main!(benches);
