//! The VM-backend sweep behind the `bench_vm` binary: tree-walk vs flat
//! bytecode on the two inner loops everything else amortizes into —
//! seeded schedule sweeps (the record phase's unit of work) and the
//! `clap-check` oracle's bounded exhaustive enumeration.
//!
//! Results are published through the [`clap_obs`] JSONL sink as
//! `bench.vm` / `bench.vm.cell` events; `obsck` enforces the field
//! schema. Each cell carries the backend's best wall-clock, the steps it
//! executed (identical across backends — the equivalence contract made
//! measurable), and its speedup relative to the tree-walk cell of the
//! same (workload, phase).

use clap_check::OracleConfig;
use clap_vm::{Backend, NullMonitor, RandomScheduler, Vm};
use std::time::Instant;

/// Workloads swept (small → mid-size, same trio as `bench_explore`).
pub const WORKLOADS: [&str; 3] = ["sim_race", "pbzip2", "bakery"];

/// Backends compared; tree first so its cell is the speedup baseline.
pub const BACKENDS: [Backend; 2] = [Backend::Tree, Backend::Bytecode];

/// Seeds per sweep-phase measurement.
pub const SWEEP_SEEDS: u64 = 300;

/// Oracle execution cap per enumeration-phase measurement (keeps the
/// mid-size workloads' DFS bounded).
pub const ORACLE_EXECUTIONS: u64 = 3_000;

/// One (workload, phase, backend) measurement.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The measured backend.
    pub backend: Backend,
    /// Best wall-clock over the repeats, in milliseconds.
    pub millis: f64,
    /// Scheduler steps (sweep) or leaves explored (oracle) — identical
    /// across backends by the equivalence contract.
    pub steps: u64,
    /// Speedup vs the tree-walk cell of the same (workload, phase).
    pub speedup: f64,
}

/// One workload × phase row of cells.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// `"sweep"` or `"oracle"`.
    pub phase: &'static str,
    /// One cell per entry of [`BACKENDS`].
    pub cells: Vec<Cell>,
}

/// One workload's measurements.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name.
    pub name: String,
    /// The sweep and oracle rows.
    pub phases: Vec<PhaseResult>,
}

/// A complete backend comparison.
#[derive(Debug, Clone)]
pub struct VmBench {
    /// Cores available on the measuring host.
    pub host_cores: usize,
    /// Repeats per cell (best-of).
    pub repeats: u32,
    /// One entry per swept workload.
    pub workloads: Vec<WorkloadResult>,
}

/// Noise margin for the CI gate: the smallest cells measure ~1ms and
/// shared CI runners jitter timings by ±20% run to run, so the gate
/// fails only when a bytecode cell is slower than tree-walk by more
/// than this factor — a real regression, not scheduler noise. The
/// speedup claims themselves live in `BENCH_vm.jsonl` and DESIGN.md.
pub const GATE_NOISE_MARGIN: f64 = 1.25;

impl VmBench {
    /// `true` when no bytecode cell is slower than its tree-walk
    /// baseline beyond [`GATE_NOISE_MARGIN`] (the CI smoke-step gate).
    pub fn bytecode_never_slower(&self) -> bool {
        self.workloads
            .iter()
            .flat_map(|w| &w.phases)
            .flat_map(|p| &p.cells)
            .filter(|c| c.backend == Backend::Bytecode)
            .all(|c| c.speedup >= 1.0 / GATE_NOISE_MARGIN)
    }
}

/// Runs the comparison: `repeats` best-of measurements per cell.
pub fn run(repeats: u32) -> VmBench {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut workloads = Vec::new();
    for name in WORKLOADS {
        let workload = clap_workloads::by_name(name).expect("workload exists");
        let program = workload.program();
        let shared = clap_analysis::analyze(&program).shared_spec();

        let mut phases = Vec::new();
        for phase in ["sweep", "oracle"] {
            let mut cells = Vec::new();
            for backend in BACKENDS {
                let mut best = f64::INFINITY;
                let mut steps = 0u64;
                for _ in 0..repeats {
                    let t0 = Instant::now();
                    steps = match phase {
                        "sweep" => {
                            let mut vm =
                                Vm::with_backend(&program, workload.model, shared.clone(), backend);
                            vm.set_step_limit(1_000_000);
                            let mut total = 0u64;
                            for seed in 0..SWEEP_SEEDS {
                                vm.reset();
                                let mut sched = RandomScheduler::with_stickiness(seed, 0.7);
                                vm.run(&mut sched, &mut NullMonitor);
                                total += vm.stats().steps;
                            }
                            total
                        }
                        _ => {
                            let config = OracleConfig::new(workload.model)
                                .with_max_executions(ORACLE_EXECUTIONS)
                                .with_backend(backend);
                            let report = clap_check::enumerate_with_shared(
                                &program,
                                shared.clone(),
                                &config,
                            );
                            report.executions
                        }
                    };
                    best = best.min(t0.elapsed().as_secs_f64() * 1e3);
                }
                eprintln!("{name}: phase={phase} backend={backend} best={best:.2}ms steps={steps}");
                cells.push(Cell {
                    backend,
                    millis: best,
                    steps,
                    speedup: 0.0,
                });
            }
            let base = cells[0].millis;
            for cell in &mut cells {
                cell.speedup = base / cell.millis;
            }
            phases.push(PhaseResult { phase, cells });
        }
        workloads.push(WorkloadResult {
            name: name.to_owned(),
            phases,
        });
    }
    VmBench {
        host_cores,
        repeats,
        workloads,
    }
}

/// Records the comparison into the global [`clap_obs`] collector: one
/// `bench.vm` header event plus one `bench.vm.cell` event per
/// measurement. Flushing an observer with a metrics path then yields the
/// JSONL artifact.
pub fn emit_events(bench: &VmBench) {
    clap_obs::event(
        "bench.vm",
        &[
            ("host_cores", bench.host_cores.to_string()),
            ("repeats", bench.repeats.to_string()),
        ],
    );
    for w in &bench.workloads {
        for p in &w.phases {
            for cell in &p.cells {
                clap_obs::event(
                    "bench.vm.cell",
                    &[
                        ("workload", w.name.clone()),
                        ("phase", p.phase.to_owned()),
                        ("backend", cell.backend.to_string()),
                        ("millis", format!("{:.3}", cell.millis)),
                        ("steps", cell.steps.to_string()),
                        ("speedup", format!("{:.3}", cell.speedup)),
                    ],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bytecode_speedup: f64) -> VmBench {
        VmBench {
            host_cores: 8,
            repeats: 3,
            workloads: vec![WorkloadResult {
                name: "sim_race".to_owned(),
                phases: vec![PhaseResult {
                    phase: "sweep",
                    cells: vec![
                        Cell {
                            backend: Backend::Tree,
                            millis: 10.0,
                            steps: 12_345,
                            speedup: 1.0,
                        },
                        Cell {
                            backend: Backend::Bytecode,
                            millis: 10.0 / bytecode_speedup,
                            steps: 12_345,
                            speedup: bytecode_speedup,
                        },
                    ],
                }],
            }],
        }
    }

    #[test]
    fn gate_accepts_faster_and_rejects_slower_bytecode() {
        assert!(sample(2.0).bytecode_never_slower());
        assert!(sample(1.0).bytecode_never_slower());
        // Inside the noise margin: not a gate failure.
        assert!(sample(0.9).bytecode_never_slower());
        assert!(!sample(0.5).bytecode_never_slower());
    }

    #[test]
    fn events_follow_the_strict_schema() {
        let _l = clap_obs::test_lock();
        clap_obs::reset();
        clap_obs::enable();
        emit_events(&sample(2.0));
        clap_obs::disable();
        let snap = clap_obs::snapshot();
        let mut buf = Vec::new();
        clap_obs::sink::write_jsonl(&snap, &mut buf).unwrap();
        for line in String::from_utf8(buf).unwrap().lines() {
            clap_obs::sink::validate_jsonl_line(line).unwrap();
        }
        assert_eq!(
            snap.events
                .iter()
                .filter(|e| e.name == "bench.vm.cell")
                .count(),
            2
        );
    }

    /// The measured step counts must be backend-independent — this is the
    /// equivalence contract surfacing in the benchmark artifact.
    #[test]
    fn step_counts_agree_across_backends_on_the_smallest_workload() {
        let workload = clap_workloads::by_name("sim_race").unwrap();
        let program = workload.program();
        let shared = clap_analysis::analyze(&program).shared_spec();
        let mut totals = Vec::new();
        for backend in BACKENDS {
            let mut vm = Vm::with_backend(&program, workload.model, shared.clone(), backend);
            let mut total = 0u64;
            for seed in 0..25 {
                vm.reset();
                let mut sched = RandomScheduler::with_stickiness(seed, 0.7);
                vm.run(&mut sched, &mut NullMonitor);
                total += vm.stats().steps;
            }
            totals.push(total);
        }
        assert_eq!(totals[0], totals[1]);
    }
}
