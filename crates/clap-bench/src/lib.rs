//! The benchmark harness: shared measurement helpers behind the
//! `table1`/`table2`/`table3` and `figure2`/`figure3`/`figure4` binaries
//! that regenerate every table and figure of the paper's evaluation (§6),
//! plus the exploration-scaling sweep behind `bench_explore`.

pub mod diff;
pub mod explore;
pub mod serve;
pub mod vm;

use clap_constraints::{count, ConstraintSystem};
use clap_core::{
    solve_auto, AutoConfig, EngineKind, Pipeline, PipelineConfig, PortfolioOutcome,
    RecordedFailure, SolverChoice,
};
use clap_leap::LeapRecorder;
use clap_parallel::{solve_parallel, worst_case_schedules_log10, ParallelConfig, ParallelOutcome};
use clap_profile::{BlTables, PathRecorder};
use clap_solver::{solve, SolveOutcome, SolverConfig};
use clap_vm::{MemModel, NullMonitor, RandomScheduler, Vm};
use clap_workloads::Workload;
use std::time::{Duration, Instant};

/// One Table 1 row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Workload name.
    pub name: String,
    /// DSL lines of code.
    pub loc: usize,
    /// Threads in the buggy execution.
    pub threads: usize,
    /// Shared variables (`#SV`).
    pub shared_vars: usize,
    /// Executed instructions (`#Inst`).
    pub instructions: u64,
    /// Executed conditional branches (`#Br`).
    pub branches: u64,
    /// Shared access points (`#SAPs`).
    pub saps: usize,
    /// Constraint clauses (`#Constraints`).
    pub constraints: usize,
    /// Unknown variables (`#Variables`).
    pub variables: usize,
    /// Symbolic phase time.
    pub time_symbolic: Duration,
    /// Sequential solve time.
    pub time_solve: Duration,
    /// Context switches of the computed schedule (`#cs`).
    pub cs: usize,
    /// Whether the replay reproduced the bug.
    pub success: bool,
}

/// Runs the whole pipeline for a workload with the sequential solver.
///
/// # Errors
///
/// Propagates any [`clap_core::PipelineError`] as a string.
pub fn table1_row(workload: &Workload) -> Result<Table1Row, String> {
    let pipeline = Pipeline::new(workload.program());
    let config = workload_config(workload);
    let report = pipeline.reproduce(&config).map_err(|e| e.to_string())?;
    Ok(Table1Row {
        name: workload.name.to_owned(),
        loc: workload.loc(),
        threads: report.threads,
        shared_vars: report.shared_vars,
        instructions: report.instructions,
        branches: report.branches,
        saps: report.saps,
        constraints: report.constraints.total_clauses(),
        variables: report.constraints.total_vars(),
        time_symbolic: report.time_symbolic,
        time_solve: report.time_solve,
        cs: report.context_switches,
        success: report.reproduced,
    })
}

/// The pipeline configuration a workload's hints imply.
pub fn workload_config(workload: &Workload) -> PipelineConfig {
    let mut config = PipelineConfig::new(workload.model);
    config.stickiness = workload.stickiness.to_vec();
    config.seed_budget = workload.seed_budget;
    config.solver = SolverChoice::Sequential(SolverConfig {
        timeout: Some(Duration::from_secs(300)),
        max_decisions: 0,
    });
    // The table binaries record 25 failure candidates per workload; fan
    // that sweep over all cores (selection is deterministic regardless).
    config.explore_workers = 0;
    config
}

/// One Table 2 row: recording overhead and log size, native vs LEAP vs
/// CLAP, averaged over `iterations` runs of the same seeded execution.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Workload name.
    pub name: String,
    /// Mean native run time (no instrumentation).
    pub native: Duration,
    /// Mean run time with the LEAP recorder.
    pub leap: Duration,
    /// Mean run time with the CLAP path recorder.
    pub clap: Duration,
    /// LEAP log size in bytes.
    pub leap_bytes: usize,
    /// CLAP log size in bytes.
    pub clap_bytes: usize,
}

impl Table2Row {
    /// LEAP overhead over native, in percent.
    pub fn leap_overhead_pct(&self) -> f64 {
        overhead_pct(self.native, self.leap)
    }

    /// CLAP overhead over native, in percent.
    pub fn clap_overhead_pct(&self) -> f64 {
        overhead_pct(self.native, self.clap)
    }

    /// Runtime-overhead reduction of CLAP vs LEAP, in percent.
    pub fn time_reduction_pct(&self) -> f64 {
        let leap = self.leap.as_secs_f64();
        let clap = self.clap.as_secs_f64();
        if leap <= 0.0 {
            return 0.0;
        }
        100.0 * (leap - clap) / leap
    }

    /// Log-size reduction of CLAP vs LEAP, in percent.
    pub fn space_reduction_pct(&self) -> f64 {
        if self.leap_bytes == 0 {
            return 0.0;
        }
        100.0 * (self.leap_bytes as f64 - self.clap_bytes as f64) / self.leap_bytes as f64
    }
}

fn overhead_pct(native: Duration, instrumented: Duration) -> f64 {
    let n = native.as_secs_f64();
    if n <= 0.0 {
        return 0.0;
    }
    100.0 * (instrumented.as_secs_f64() - n) / n
}

/// Measures a workload's recording overhead (Table 2). The same seed and
/// stickiness drive all three configurations, so the executions are
/// identical modulo instrumentation; `iterations` runs are averaged.
pub fn table2_row(workload: &Workload, iterations: u32) -> Table2Row {
    let program = workload.program();
    let tables = BlTables::build(&program);
    // Use a fixed mid-range seed; the interleaving does not matter for
    // overhead, only the amount of work.
    let seed = 1234;
    let stick = 0.7;

    let run_native = || {
        let mut vm = Vm::new(&program, workload.model);
        vm.set_step_limit(4_000_000);
        let mut sched = RandomScheduler::with_stickiness(seed, stick);
        vm.run(&mut sched, &mut NullMonitor);
    };
    let run_clap = || {
        let mut vm = Vm::new(&program, workload.model);
        vm.set_step_limit(4_000_000);
        let mut sched = RandomScheduler::with_stickiness(seed, stick);
        let mut rec = PathRecorder::new(&tables);
        vm.run(&mut sched, &mut rec);
        rec.finish()
    };
    let run_leap = || {
        let mut vm = Vm::new(&program, workload.model);
        vm.set_step_limit(4_000_000);
        let mut sched = RandomScheduler::with_stickiness(seed, stick);
        let mut rec = LeapRecorder::new();
        vm.run(&mut sched, &mut rec);
        rec.finish()
    };

    // Warm up, then measure.
    run_native();
    let clap_bytes = run_clap().size_bytes();
    let leap_bytes = run_leap().size_bytes();

    let time = |f: &dyn Fn()| {
        let t0 = Instant::now();
        for _ in 0..iterations {
            f();
        }
        t0.elapsed() / iterations
    };
    let native = time(&|| run_native());
    let clap = time(&|| {
        run_clap();
    });
    let leap = time(&|| {
        run_leap();
    });

    Table2Row {
        name: workload.name.to_owned(),
        native,
        leap,
        clap,
        leap_bytes,
        clap_bytes,
    }
}

/// One Table 3 row: parallel vs sequential solving.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Workload name.
    pub name: String,
    /// `log10` of the worst-case schedule count.
    pub worst_log10: f64,
    /// Candidate schedules generated before stopping.
    pub generated: u64,
    /// Preemption bound at which the search stopped (`#cs`).
    pub cs_bound: usize,
    /// Correct schedules found.
    pub good: u64,
    /// Whether the parallel search found a schedule before its deadline
    /// (the paper's racey row is the analogous "did not finish" case).
    pub found: bool,
    /// Parallel search time.
    pub par_time: Duration,
    /// Sequential solver time on the same system.
    pub seq_time: Duration,
    /// Adaptive-portfolio ([`clap_core::solve_auto`]) time on the same
    /// system.
    pub auto_time: Duration,
    /// The engine the portfolio won with (`None` when it failed).
    pub auto_winner: Option<EngineKind>,
}

/// Runs both solvers on a workload's recorded failure (Table 3).
///
/// # Errors
///
/// Propagates pipeline errors as strings.
pub fn table3_row(workload: &Workload) -> Result<Table3Row, String> {
    let pipeline = Pipeline::new(workload.program());
    let config = workload_config(workload);
    let recorded: RecordedFailure = pipeline
        .record_failure(&config)
        .map_err(|e| e.to_string())?;
    let trace = pipeline
        .symbolic_trace(&recorded)
        .map_err(|e| e.to_string())?;
    let system = ConstraintSystem::build(pipeline.program(), &trace, workload.model);
    let _ = count(&system);

    let t0 = Instant::now();
    let par = solve_parallel(
        pipeline.program(),
        &system,
        ParallelConfig {
            stop_after_good: 8,
            timeout: Some(Duration::from_secs(120)),
            ..ParallelConfig::default()
        },
    );
    let par_time = t0.elapsed();
    let stats = par.stats();
    let found = matches!(par, ParallelOutcome::Found { .. });

    let t1 = Instant::now();
    let seq = solve(pipeline.program(), &system, SolverConfig::default());
    let seq_time = t1.elapsed();
    if !matches!(seq, SolveOutcome::Sat(_)) {
        return Err("sequential solver did not find a schedule".into());
    }

    let t2 = Instant::now();
    let auto = solve_auto(
        pipeline.program(),
        &system,
        &AutoConfig::default().with_solve_timeout(Duration::from_secs(120)),
    );
    let auto_time = t2.elapsed();
    let auto_winner = match &auto {
        PortfolioOutcome::Found { report, .. } => report.winner,
        PortfolioOutcome::Unsat(_) | PortfolioOutcome::Budget(_) => None,
    };

    Ok(Table3Row {
        name: workload.name.to_owned(),
        worst_log10: worst_case_schedules_log10(&system),
        generated: stats.generated,
        cs_bound: stats.cs_bound,
        good: stats.good,
        found,
        par_time,
        seq_time,
        auto_time,
        auto_winner,
    })
}

/// One Table 4 cell: the same recorded C11 failure, re-encoded and solved
/// under one memory model. Stronger models add more happens-before edges;
/// past some strength the weak behavior the trace recorded becomes
/// infeasible and the solver proves Unsat.
#[derive(Debug, Clone)]
pub struct Table4Cell {
    /// The memory model the constraint system was built for.
    pub model: MemModel,
    /// Memory-order (`F_mo`) edges — the per-model happens-before delta.
    pub hb_edges: usize,
    /// Order variables (one per SAP; fixed by the trace, listed so the
    /// table shows what the models are ordering).
    pub order_vars: usize,
    /// Total clause count.
    pub clauses: usize,
    /// Sequential solve time.
    pub solve_time: Duration,
    /// Whether the solver found a schedule (Sat).
    pub sat: bool,
}

/// One Table 4 row: a lock-free workload's recorded C11 failure swept
/// across all four memory models.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Workload name.
    pub name: String,
    /// SAPs in the recorded trace.
    pub saps: usize,
    /// One cell per memory model, in `SC, TSO, PSO, C11` order.
    pub cells: Vec<Table4Cell>,
}

/// Records one failing execution of a lock-free workload under its own
/// model (C11), then rebuilds and solves the constraint system under each
/// memory model (Table 4).
///
/// # Errors
///
/// Propagates pipeline errors as strings.
pub fn table4_row(workload: &Workload) -> Result<Table4Row, String> {
    let pipeline = Pipeline::new(workload.program());
    let config = workload_config(workload);
    let recorded: RecordedFailure = pipeline
        .record_failure(&config)
        .map_err(|e| e.to_string())?;
    let trace = pipeline
        .symbolic_trace(&recorded)
        .map_err(|e| e.to_string())?;
    let mut cells = Vec::new();
    for model in [MemModel::Sc, MemModel::Tso, MemModel::Pso, MemModel::C11] {
        let system = ConstraintSystem::build(pipeline.program(), &trace, model);
        let stats = count(&system);
        let t = Instant::now();
        let outcome = solve(
            pipeline.program(),
            &system,
            SolverConfig {
                timeout: Some(Duration::from_secs(120)),
                max_decisions: 0,
            },
        );
        cells.push(Table4Cell {
            model,
            hb_edges: stats.mo_clauses,
            order_vars: stats.order_vars,
            clauses: stats.total_clauses(),
            solve_time: t.elapsed(),
            sat: matches!(outcome, SolveOutcome::Sat(_)),
        });
    }
    Ok(Table4Row {
        name: workload.name.to_owned(),
        saps: trace.sap_count(),
        cells,
    })
}

/// Splits the observability flags (`--trace <path>`, `--metrics <path>`,
/// `-v`/`--verbose`) out of a raw argument list, returning the remaining
/// positional arguments and the configured [`clap_obs::Observer`]. Shared
/// by the bench and diagnostic binaries so they all speak the same flags
/// as `clap-reproduce`.
///
/// # Errors
///
/// Returns a message when a flag is missing its path argument.
pub fn split_obs_args(args: &[String]) -> Result<(Vec<String>, clap_obs::Observer), String> {
    let mut rest = Vec::new();
    let mut observer = clap_obs::Observer::none();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => {
                let v = it.next().ok_or("--trace needs a path")?;
                observer = observer.with_trace(v);
            }
            "--metrics" => {
                let v = it.next().ok_or("--metrics needs a path")?;
                observer = observer.with_metrics(v);
            }
            "-v" | "--verbose" => observer = observer.with_summary(),
            other => rest.push(other.to_owned()),
        }
    }
    Ok((rest, observer))
}

/// Formats a `Duration` compactly for table cells.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row_for_smallest_workload() {
        let w = clap_workloads::by_name("sim_race").unwrap();
        let row = table1_row(&w).unwrap();
        assert!(row.success);
        assert_eq!(row.threads, 5);
        assert!(row.constraints > 0);
    }

    #[test]
    fn table2_row_measures_overheads() {
        let w = clap_workloads::by_name("pfscan").unwrap();
        let row = table2_row(&w, 5);
        assert!(row.leap_bytes > row.clap_bytes, "CLAP logs are smaller");
        assert!(row.space_reduction_pct() > 0.0);
    }

    #[test]
    fn table3_row_for_smallest_workload() {
        let w = clap_workloads::by_name("dekker").unwrap();
        let row = table3_row(&w).unwrap();
        assert!(row.good >= 1);
        assert!(row.worst_log10 > 1.0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12µs");
        assert_eq!(fmt_duration(Duration::from_micros(2_500)), "2.5ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
    }
}
