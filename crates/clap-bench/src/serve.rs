//! The service load generator behind the `bench_serve` binary: N
//! concurrent clients hammer a [`clap_serve::Server`] over the example
//! corpus, once cold (every submission runs a pipeline) and once warm
//! (every submission is a content-addressed cache hit), then a deliberately
//! undersized instance demonstrates backpressure shedding.
//!
//! Results are published through the [`clap_obs`] JSONL sink as
//! `bench.serve` / `bench.serve.cell` / `bench.serve.summary` /
//! `bench.serve.shed` events; the artifact validates under `obsck`.

use clap_serve::{Client, ClientError, ServeConfig, Server, SubmitRequest};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Worker threads of the measured server.
pub const WORKERS: usize = 2;
/// Queue capacity of the measured server.
pub const QUEUE_CAP: usize = 64;
/// How long one submission may take end to end before the bench aborts.
const JOB_TIMEOUT: Duration = Duration::from_secs(300);

/// One timed submission.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Corpus program name (file stem).
    pub program: String,
    /// `"cold"` or `"warm"`.
    pub phase: &'static str,
    /// Submit → report-in-hand latency, in microseconds.
    pub latency_us: u64,
    /// Whether the server answered from the cache.
    pub cached: bool,
}

/// The backpressure measurement: an undersized server (1 worker, queue
/// of 2) under a burst of distinct submissions.
#[derive(Debug, Clone)]
pub struct ShedResult {
    /// Submissions attempted during the burst phase.
    pub submitted: usize,
    /// Submissions the server accepted (queued or coalesced).
    pub accepted: usize,
    /// Submissions shed with `503`.
    pub shed: usize,
    /// Jobs the server finished (completed + failed) before the drain
    /// ended — every accepted job must be here.
    pub drained: u64,
}

/// A complete load-generation run.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Programs in the corpus.
    pub corpus: usize,
    /// Worker threads of the measured server.
    pub workers: usize,
    /// Queue capacity of the measured server.
    pub queue_cap: usize,
    /// Concurrent clients in the warm phase.
    pub clients: usize,
    /// Every timed submission, cold then warm.
    pub samples: Vec<Sample>,
    /// Mean cold latency (µs).
    pub cold_us: u64,
    /// Mean warm latency (µs).
    pub warm_us: u64,
    /// `cold_us / warm_us`.
    pub speedup: f64,
    /// The backpressure phase.
    pub shed: ShedResult,
}

/// Times one submission end to end: submit, wait until `Done`, fetch
/// the report.
fn timed_submission(client: &Client, name: &str, request: &SubmitRequest) -> (u64, bool) {
    let t0 = Instant::now();
    let job = client
        .submit(request)
        .unwrap_or_else(|e| panic!("{name}: submit failed: {e}"));
    let done = client
        .wait(job.job, JOB_TIMEOUT)
        .unwrap_or_else(|e| panic!("{name}: wait failed: {e}"));
    let report = client
        .fetch(done.job)
        .unwrap_or_else(|e| panic!("{name}: fetch failed: {e}"));
    assert!(!report.is_empty(), "{name}: empty report");
    (t0.elapsed().as_micros() as u64, done.cached)
}

/// A program whose assertion never fails: reproduction sweeps the whole
/// seed budget, which makes job duration proportional to `budget` — the
/// controllable load for the shed phase.
fn busywork_program(tag: u32) -> String {
    format!(
        "global int x = {tag};
         fn w() {{ let v: int = x; yield; x = v + 1; }}
         fn main() {{
           let a: thread = fork w();
           join a;
           assert(x >= 0, \"never fires {tag}\");
         }}"
    )
}

/// Runs the load generation: cold pass, `clients`-way concurrent warm
/// pass, then the shed phase on an undersized instance. `corpus` is
/// `(name, DSL source)` pairs.
pub fn run(corpus: &[(String, String)], clients: usize) -> ServeBench {
    let clients = clients.max(1);
    assert!(!corpus.is_empty(), "empty corpus");

    let server = Server::start(ServeConfig {
        workers: WORKERS,
        queue_cap: QUEUE_CAP,
        ..ServeConfig::default()
    })
    .expect("start bench server");
    let addr = server.addr().to_string();
    let client = Client::new(addr.clone());

    // Cold pass: every program is a distinct fingerprint, so every
    // submission runs a full pipeline.
    let mut samples = Vec::new();
    for (name, source) in corpus {
        let (latency_us, cached) = timed_submission(&client, name, &SubmitRequest::new(source));
        assert!(!cached, "{name}: cold submission answered from cache");
        eprintln!("cold: {name} {latency_us}us");
        samples.push(Sample {
            program: name.clone(),
            phase: "cold",
            latency_us,
            cached,
        });
    }

    // Warm pass: N clients re-submit the identical corpus concurrently;
    // every answer must come from the cache.
    let warm = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let client = Client::new(addr.clone());
                for (name, source) in corpus {
                    let (latency_us, cached) =
                        timed_submission(&client, name, &SubmitRequest::new(source));
                    assert!(cached, "{name}: warm submission missed the cache");
                    warm.lock().unwrap().push(Sample {
                        program: name.clone(),
                        phase: "warm",
                        latency_us,
                        cached,
                    });
                }
            });
        }
    });
    samples.extend(warm.into_inner().unwrap());
    client.shutdown().expect("shutdown bench server");
    server.join();

    let mean = |phase: &str| {
        let lats: Vec<u64> = samples
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.latency_us)
            .collect();
        (lats.iter().sum::<u64>() / lats.len() as u64).max(1)
    };
    let cold_us = mean("cold");
    let warm_us = mean("warm");
    let speedup = cold_us as f64 / warm_us as f64;
    eprintln!("cold {cold_us}us, warm {warm_us}us, speedup {speedup:.1}x");

    ServeBench {
        corpus: corpus.len(),
        workers: WORKERS,
        queue_cap: QUEUE_CAP,
        clients,
        samples,
        cold_us,
        warm_us,
        speedup,
        shed: run_shed(),
    }
}

/// The shed phase: a 1-worker, queue-of-2 server receives one long job
/// (holding the worker), two fillers (filling the queue), and then a
/// burst of distinct submissions that the server must shed with `503` —
/// without panicking or deadlocking, and draining everything it accepted.
fn run_shed() -> ShedResult {
    let before = clap_obs::snapshot();
    let finished = |snap: &clap_obs::Snapshot| {
        snap.counters
            .get("serve.jobs.completed")
            .copied()
            .unwrap_or(0)
            + snap.counters.get("serve.jobs.failed").copied().unwrap_or(0)
    };

    let server = Server::start(ServeConfig {
        workers: 1,
        queue_cap: 2,
        ..ServeConfig::default()
    })
    .expect("start shed server");
    let client = Client::new(server.addr().to_string());

    let mut submitted = 0;
    let mut accepted = 0;
    let mut shed = 0;
    let mut submit = |request: &SubmitRequest| {
        submitted += 1;
        match client.submit(request) {
            Ok(_) => accepted += 1,
            Err(ClientError::Http { status: 503, .. }) => shed += 1,
            Err(e) => panic!("shed phase: unexpected submit error: {e}"),
        }
    };

    // One long job pins the worker; the budget bounds its duration.
    let mut stall = SubmitRequest::new(busywork_program(0));
    stall.seed_budget = Some(60_000);
    submit(&stall);
    // Two quick fillers occupy the queue…
    for tag in 1..=2 {
        let mut filler = SubmitRequest::new(busywork_program(tag));
        filler.seed_budget = Some(50);
        submit(&filler);
    }
    // …so the burst has nowhere to go.
    for tag in 3..=10 {
        let mut burst = SubmitRequest::new(busywork_program(tag));
        burst.seed_budget = Some(50);
        submit(&burst);
    }
    assert!(shed > 0, "undersized server shed nothing");

    client.shutdown().expect("shutdown shed server");
    server.join();
    let drained = finished(&clap_obs::snapshot()) - finished(&before);
    eprintln!("shed: submitted {submitted}, accepted {accepted}, shed {shed}, drained {drained}");
    assert_eq!(drained, accepted as u64, "accepted jobs were not drained");
    ShedResult {
        submitted,
        accepted,
        shed,
        drained,
    }
}

/// Records the run into the global [`clap_obs`] collector: a
/// `bench.serve` header, one `bench.serve.cell` per timed submission,
/// the `bench.serve.summary` cold/warm comparison, and the
/// `bench.serve.shed` backpressure tally. Flushing an observer with a
/// metrics path then yields the JSONL artifact.
pub fn emit_events(bench: &ServeBench) {
    clap_obs::event(
        "bench.serve",
        &[
            ("corpus", bench.corpus.to_string()),
            ("workers", bench.workers.to_string()),
            ("queue_cap", bench.queue_cap.to_string()),
            ("clients", bench.clients.to_string()),
        ],
    );
    for sample in &bench.samples {
        clap_obs::event(
            "bench.serve.cell",
            &[
                ("program", sample.program.clone()),
                ("phase", sample.phase.to_owned()),
                ("latency_us", sample.latency_us.to_string()),
                ("cached", sample.cached.to_string()),
            ],
        );
    }
    clap_obs::event(
        "bench.serve.summary",
        &[
            ("cold_us", bench.cold_us.to_string()),
            ("warm_us", bench.warm_us.to_string()),
            ("speedup", format!("{:.3}", bench.speedup)),
        ],
    );
    clap_obs::event(
        "bench.serve.shed",
        &[
            ("submitted", bench.shed.submitted.to_string()),
            ("accepted", bench.shed.accepted.to_string()),
            ("shed", bench.shed.shed.to_string()),
            ("drained", bench.shed.drained.to_string()),
        ],
    );
}

/// Loads the `(name, source)` corpus from a directory of `.clap` files,
/// sorted by name for a stable artifact.
pub fn load_corpus(dir: &std::path::Path) -> std::io::Result<Vec<(String, String)>> {
    let mut corpus = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "clap") {
            let name = path
                .file_stem()
                .expect("stem")
                .to_string_lossy()
                .into_owned();
            corpus.push((name, std::fs::read_to_string(&path)?));
        }
    }
    corpus.sort();
    Ok(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeBench {
        ServeBench {
            corpus: 2,
            workers: WORKERS,
            queue_cap: QUEUE_CAP,
            clients: 4,
            samples: vec![
                Sample {
                    program: "lost_update".to_owned(),
                    phase: "cold",
                    latency_us: 120_000,
                    cached: false,
                },
                Sample {
                    program: "lost_update".to_owned(),
                    phase: "warm",
                    latency_us: 900,
                    cached: true,
                },
            ],
            cold_us: 120_000,
            warm_us: 900,
            speedup: 133.3,
            shed: ShedResult {
                submitted: 11,
                accepted: 3,
                shed: 8,
                drained: 3,
            },
        }
    }

    /// Every event the emitter produces passes the strict `bench.*`
    /// schema the JSONL sink enforces — the artifact always validates
    /// under `obsck`.
    #[test]
    fn emitted_events_satisfy_the_strict_schema() {
        let _guard = clap_obs::test_lock();
        clap_obs::reset();
        clap_obs::enable();
        emit_events(&sample());
        clap_obs::disable();

        let snap = clap_obs::snapshot();
        let mut out = Vec::new();
        clap_obs::sink::write_jsonl(&snap, &mut out).expect("render");
        let text = String::from_utf8(out).expect("utf8");
        let mut seen = Vec::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let kind = clap_obs::sink::validate_jsonl_line(line)
                .unwrap_or_else(|e| panic!("invalid artifact line `{line}`: {e}"));
            if kind == "event" {
                seen.push(line.to_owned());
            }
        }
        assert_eq!(seen.len(), 5, "header + 2 cells + summary + shed");
        assert!(seen[0].contains("\"name\":\"bench.serve\""));
        assert!(seen[3].contains("\"name\":\"bench.serve.summary\""));
        assert!(seen[4].contains("\"name\":\"bench.serve.shed\""));
    }

    /// The corpus loader returns sorted `(stem, source)` pairs and skips
    /// non-`.clap` files.
    #[test]
    fn corpus_loader_filters_and_sorts() {
        let dir = std::env::temp_dir().join(format!("clap_bench_corpus_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("b.clap"), "fn main() {}").expect("write");
        std::fs::write(dir.join("a.clap"), "fn main() {}").expect("write");
        std::fs::write(dir.join("notes.txt"), "not a program").expect("write");
        let corpus = load_corpus(&dir).expect("load");
        std::fs::remove_dir_all(&dir).ok();
        let names: Vec<&str> = corpus.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }
}
