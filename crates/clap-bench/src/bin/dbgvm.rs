//! Decomposes the VM's per-step cost: full run loop vs scheduler choice
//! vs raw dispatch, per backend. A diagnostic aid for the `bench_vm`
//! numbers, in the spirit of `dbgdead`/`dbgpar`.
//!
//! ```text
//! dbgvm [workload] [seeds]
//! ```

use clap_vm::{Backend, FifoScheduler, NullMonitor, RandomScheduler, Vm};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "sim_race".to_owned());
    let seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);

    let workload = clap_workloads::by_name(&name).expect("workload exists");
    let program = workload.program();
    let shared = clap_analysis::analyze(&program).shared_spec();

    for backend in [Backend::Tree, Backend::Bytecode] {
        let mut vm = Vm::with_backend(&program, workload.model, shared.clone(), backend);
        vm.set_step_limit(1_000_000);

        // Random scheduler (the bench_vm sweep shape).
        let t0 = Instant::now();
        let mut steps = 0u64;
        for seed in 0..seeds {
            vm.reset();
            let mut sched = RandomScheduler::with_stickiness(seed, 0.7);
            vm.run(&mut sched, &mut NullMonitor);
            steps += vm.stats().steps;
        }
        let random_ns = t0.elapsed().as_nanos() as f64 / steps as f64;

        // Fifo scheduler: same loop minus the RNG draws.
        let t0 = Instant::now();
        let mut fifo_steps = 0u64;
        for _ in 0..seeds {
            vm.reset();
            vm.run(&mut FifoScheduler, &mut NullMonitor);
            fifo_steps += vm.stats().steps;
        }
        let fifo_ns = t0.elapsed().as_nanos() as f64 / fifo_steps as f64;

        // Reset cost alone.
        let t0 = Instant::now();
        for _ in 0..seeds {
            vm.reset();
        }
        let reset_ns = t0.elapsed().as_nanos() as f64 / seeds as f64;

        println!(
            "{name} {backend}: random {random_ns:.1} ns/step ({steps} steps) | \
             fifo {fifo_ns:.1} ns/step ({fifo_steps} steps) | reset {reset_ns:.0} ns/seed"
        );
    }
}
