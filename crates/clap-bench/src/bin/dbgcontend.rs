//! Diagnostic: where do parallel exploration workers spend their wall
//! time? Runs one stickiness level of the record sweep in profiled mode
//! ([`clap_core::Pipeline::profile_contention`]) and prints the
//! per-worker utilization table — direct evidence for ROADMAP item 2
//! (the crossbeam sweep losing to sequential on small workloads).
//!
//! ```text
//! dbgcontend [workload-name] [--workers N] [--trace t.json] [--metrics m.jsonl]
//! ```
//!
//! Default workload: `sim_race`, the workload ROADMAP item 2 cites.
//! `--workers 0` (the default) means one worker per core.
//!
//! Every row attributes one worker's wall time across five categories —
//! seed claim, VM restore, enabled-action rebuild, VM stepping, idle —
//! as percentages of that worker's wall, plus the attribution overrun
//! (timer skew clamped away from idle) in microseconds. The probe checks
//! itself: it exits nonzero when the categories fail to cover a worker's
//! wall time within 10%, i.e. when the attribution (not the pool) is
//! broken.
//!
//! The profiler always drives the parallel pool — a one-worker
//! "contention" profile would answer nothing — but the header reports
//! which path production (`record_failure`) would actually take for this
//! configuration, and the table carries a `NOTE:` label when the two
//! diverge.

use clap_bench::split_obs_args;
use clap_core::{Pipeline, PipelineConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (rest, observer) = split_obs_args(&args).expect("bad arguments");
    let observer = observer.with_summary();

    let mut name = "sim_race".to_string();
    let mut workers = 0usize;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers needs a number");
            }
            other => name = other.to_string(),
        }
    }

    let w = clap_workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload {name:?}; see clap-workloads"));
    let pipeline = Pipeline::new(w.program());
    let mut config = PipelineConfig::new(w.model);
    config.stickiness = w.stickiness.to_vec();
    config.seed_budget = w.seed_budget;
    config.explore_workers = workers;
    let stickiness = config.stickiness.first().copied().unwrap_or(1.0);

    observer.install();
    let profile = pipeline.profile_contention(&config, stickiness);

    println!(
        "workload {name}  stickiness {stickiness}  seeds {}  workers {}  candidates {}",
        profile.seed_budget, profile.requested_workers, profile.failures
    );
    println!(
        "production path: {} ({})",
        if profile.production_parallel {
            "parallel"
        } else {
            "sequential"
        },
        profile.production_reason
    );
    print!("{}", profile.render_table());

    // Feed the same numbers through the collector so --metrics/--trace
    // exports carry them: one event per worker plus pool-wide share
    // histograms (percent of wall per category).
    let mut broken = false;
    for wa in &profile.workers {
        clap_obs::event(
            "dbgcontend.worker",
            &[
                ("worker", wa.worker.to_string()),
                ("seeds", wa.seeds.to_string()),
                ("wall_us", wa.wall.as_micros().to_string()),
                ("claim_us", wa.claim.as_micros().to_string()),
                ("restore_us", wa.restore.as_micros().to_string()),
                ("rebuild_us", wa.rebuild.as_micros().to_string()),
                ("step_us", wa.step.as_micros().to_string()),
                ("idle_us", wa.idle.as_micros().to_string()),
                ("overrun_us", wa.overrun.as_micros().to_string()),
            ],
        );
        let wall = wa.wall.as_secs_f64().max(f64::EPSILON);
        for (cat, d) in [
            ("claim", wa.claim),
            ("restore", wa.restore),
            ("rebuild", wa.rebuild),
            ("step", wa.step),
            ("idle", wa.idle),
        ] {
            let pct = (100.0 * d.as_secs_f64() / wall).round() as u64;
            clap_obs::observe(&format!("dbgcontend.{cat}_pct"), pct);
        }
        // Self-check: the five categories must reconstruct the wall.
        let sum = wa.accounted() + wa.idle;
        let ratio = sum.as_secs_f64() / wall;
        if !(0.9..=1.1).contains(&ratio) {
            eprintln!(
                "worker {}: categories cover {:.1}% of wall — attribution broken",
                wa.worker,
                100.0 * ratio
            );
            broken = true;
        }
    }

    let totals = profile.totals();
    let pool_wall = profile.total_wall().as_secs_f64().max(f64::EPSILON);
    let (dom, dom_d) = totals
        .into_iter()
        .max_by_key(|&(_, d)| d)
        .expect("five categories");
    let hint = match dom {
        "claim" => "cross-thread coordination (ROADMAP 2: fine-grained atomic seed claiming)",
        "restore" => "per-seed VM restore (ROADMAP 2: snapshot restore cost)",
        "rebuild" => "enabled-action rebuild (ROADMAP 1: the step-loop bound)",
        "step" => "VM stepping — compute-bound, the pool should scale with cores",
        _ => "idle — startup, post-stop drain, scheduler gaps (ROADMAP 2: watermark finalizer)",
    };
    println!(
        "dominant: {dom} ({:.1}% of pool wall) — {hint}",
        100.0 * dom_d.as_secs_f64() / pool_wall
    );

    if let Err(e) = observer.flush() {
        eprintln!("clap-obs: failed to write sink: {e}");
    }
    if broken {
        std::process::exit(1);
    }
}
