//! Regenerates **Table 3** (parallel constraint solving): worst-case
//! schedule counts, candidates generated, correct schedules found, and
//! parallel vs sequential solve time.

use clap_bench::{fmt_duration, table3_row};

fn main() {
    println!("Table 3 — parallel generate-and-validate vs sequential solving");
    println!(
        "{:<10} {:>12} {:>16} {:>6} {:>10} {:>10}",
        "Program", "#worst", "#gen(#cs)", "#good", "Time-par", "Time-seq"
    );
    for workload in clap_workloads::all() {
        match table3_row(&workload) {
            Ok(r) => println!(
                "{:<10} {:>9} {:>12}({}) {:>6} {:>10} {:>10}",
                r.name,
                format!("> 10^{:.0}", r.worst_log10),
                r.generated,
                r.cs_bound,
                r.good,
                if r.found {
                    fmt_duration(r.par_time)
                } else {
                    format!("> {}*", fmt_duration(r.par_time))
                },
                fmt_duration(r.seq_time),
            ),
            Err(e) => println!("{:<10} FAILED: {e}", workload.name),
        }
    }
    println!("* the parallel search hit its deadline without a hit (the paper's");
    println!("  racey row is the analogous case); the sequential solver still solves it.");
}
