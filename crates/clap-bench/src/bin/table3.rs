//! Regenerates **Table 3** (parallel constraint solving): worst-case
//! schedule counts, candidates generated, correct schedules found, and
//! parallel vs sequential solve time.
//!
//! With `--metrics <path>` (and/or `--trace <path>`) the rows are also
//! published through the `clap-obs` JSONL sink as `bench.table3.row`
//! events.

use clap_bench::{fmt_duration, split_obs_args, table3_row};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (_, observer) = split_obs_args(&args).expect("bad arguments");
    observer.install();
    println!("Table 3 — parallel generate-and-validate vs sequential solving");
    println!(
        "{:<10} {:>12} {:>16} {:>6} {:>10} {:>10} {:>16}",
        "Program", "#worst", "#gen(#cs)", "#good", "Time-par", "Time-seq", "Time-auto(win)"
    );
    for workload in clap_workloads::all() {
        match table3_row(&workload) {
            Ok(r) => {
                clap_obs::event(
                    "bench.table3.row",
                    &[
                        ("program", r.name.clone()),
                        ("worst_log10", format!("{:.0}", r.worst_log10)),
                        ("generated", r.generated.to_string()),
                        ("cs_bound", r.cs_bound.to_string()),
                        ("good", r.good.to_string()),
                        ("found", r.found.to_string()),
                        ("par_time_ns", r.par_time.as_nanos().to_string()),
                        ("seq_time_ns", r.seq_time.as_nanos().to_string()),
                        ("auto_time_ns", r.auto_time.as_nanos().to_string()),
                        (
                            "auto_winner",
                            r.auto_winner
                                .map_or_else(|| "none".to_owned(), |w| w.to_string()),
                        ),
                    ],
                );
                println!(
                    "{:<10} {:>9} {:>12}({}) {:>6} {:>10} {:>10} {:>16}",
                    r.name,
                    format!("> 10^{:.0}", r.worst_log10),
                    r.generated,
                    r.cs_bound,
                    r.good,
                    if r.found {
                        fmt_duration(r.par_time)
                    } else {
                        format!("> {}*", fmt_duration(r.par_time))
                    },
                    fmt_duration(r.seq_time),
                    match r.auto_winner {
                        Some(w) => format!("{} ({w})", fmt_duration(r.auto_time)),
                        None => format!("{} (none)", fmt_duration(r.auto_time)),
                    },
                );
            }
            Err(e) => println!("{:<10} FAILED: {e}", workload.name),
        }
    }
    println!("* the parallel search hit its deadline without a hit (the paper's");
    println!("  racey row is the analogous case); the sequential solver still solves it.");
    if let Err(e) = observer.flush() {
        eprintln!("clap-obs: failed to write sink: {e}");
    }
}
