//! Regenerates **Figure 2**: the running example whose first assertion is
//! violable by an SC interleaving while the second requires the PSO
//! reordering of two stores. This binary hunts each assertion under each
//! memory model, demonstrating the paper's left/right split.

use clap_ir::AssertId;
use clap_vm::{MemModel, NullMonitor, Outcome, RandomScheduler, Vm};
use std::collections::HashMap;

/// First failing seed per assert id under `model`.
fn explore(program: &clap_ir::Program, model: MemModel, budget: u64) -> HashMap<u32, u64> {
    let mut found: HashMap<u32, u64> = HashMap::new();
    for stick in [9u32, 7, 5, 3] {
        for seed in 0..budget {
            if found.len() == program.asserts.len() {
                return found;
            }
            let mut vm = Vm::new(program, model);
            vm.set_step_limit(1_000_000);
            let mut sched = RandomScheduler::with_stickiness(seed, stick as f64 / 10.0);
            if let Outcome::AssertFailed { assert, .. } = vm.run(&mut sched, &mut NullMonitor) {
                found.entry(assert.0).or_insert(seed);
            }
        }
    }
    found
}

fn main() {
    let workload = clap_workloads::figure2();
    let program = workload.program();
    println!("Figure 2 — the running example\n");
    println!("{}", workload.source.trim());
    println!();
    println!(
        "{:<6} {:<40} {:<40}",
        "model",
        format!("assert1 ({:?})", program.asserts[1].message),
        format!("assert2 ({:?})", program.asserts[0].message)
    );
    for (model, budget) in [
        (MemModel::Sc, 20_000),
        (MemModel::Tso, 20_000),
        (MemModel::Pso, 20_000),
    ] {
        let found = explore(&program, model, budget);
        let cell = |id: AssertId| match found.get(&id.0) {
            Some(seed) => format!("violated (seed {seed})"),
            None => "never violated".to_owned(),
        };
        println!(
            "{:<6} {:<40} {:<40}",
            model.to_string(),
            cell(AssertId(1)),
            cell(AssertId(0))
        );
    }
    println!();
    println!("Expected shape (paper Figure 2): the SC-interleaving assertion is");
    println!("violable under every model, while the second assertion requires");
    println!("PSO's reordering of t1's two stores to different variables.");
}
