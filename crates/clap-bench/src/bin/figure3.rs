//! Regenerates **Figure 3**: the CLAP constraint modeling of the running
//! example — (a) path constraints, (b) read-write constraints, (c) memory
//! order constraints — printed from a real recorded PSO failure.

use clap_constraints::{ConstraintSystem, ReadSource};
use clap_core::{Pipeline, PipelineConfig};

fn main() {
    let workload = clap_workloads::figure2();
    let pipeline = Pipeline::new(workload.program());
    let mut config = PipelineConfig::new(workload.model);
    config.stickiness = workload.stickiness.to_vec();
    config.seed_budget = workload.seed_budget;
    let recorded = pipeline
        .record_failure(&config)
        .expect("figure2 fails under PSO");
    let trace = pipeline.symbolic_trace(&recorded).expect("trace builds");
    let system = ConstraintSystem::build(pipeline.program(), &trace, workload.model);
    let program = pipeline.program();

    println!("Figure 3 — constraint modeling of the Figure 2 example (PSO)\n");

    println!("Shared access points:");
    for (ti, saps) in trace.per_thread.iter().enumerate() {
        println!("  thread T{ti} ({}):", trace.lineages[ti]);
        for &s in saps {
            println!("    {}", trace.display_sap(program, s));
        }
    }

    println!("\n(a) Path constraints (F_path) and bug predicate (F_bug):");
    for pc in &trace.path_conds {
        println!("  [{}] {}", pc.thread, trace.arena.display(pc.expr));
    }
    println!("  F_bug: {}", trace.arena.display(trace.bug));

    println!("\n(b) Read-write constraints (F_rw):");
    for r in &system.reads {
        let cands: Vec<String> = r
            .candidates
            .iter()
            .map(|c| match c {
                ReadSource::Init => format!("init({})", r.init_value),
                ReadSource::Write(w) => w.to_string(),
            })
            .collect();
        println!(
            "  {} ({}): {} ∈ {{ {} }}",
            r.read,
            trace.display_sap(program, r.read),
            r.var,
            cands.join(", ")
        );
    }

    println!("\n(c) Memory order constraints (F_mo + fork/join), as O_a < O_b edges:");
    for &(a, b) in &system.hard_edges {
        println!("  O({a}) < O({b})");
    }

    let stats = clap_constraints::count(&system);
    println!(
        "\nTotals: {} clauses over {} variables ({} value, {} order, {} match)",
        stats.total_clauses(),
        stats.total_vars(),
        stats.value_vars,
        stats.order_vars,
        stats.match_vars
    );
}
