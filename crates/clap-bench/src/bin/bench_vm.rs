//! Emits `BENCH_vm.jsonl`: tree-walk vs flat-bytecode VM backend on the
//! two hot loops of the pipeline — seeded schedule sweeps and the
//! `clap-check` oracle's bounded enumeration — per workload.
//!
//! The artifact is the standard `clap-obs` JSONL stream (validate with
//! the `obsck` binary): one `bench.vm` header event and one
//! `bench.vm.cell` event per (workload, phase, backend) measurement.
//!
//! ```text
//! bench_vm [output.jsonl] [repeats] [--check]
//! ```
//!
//! With `--check` the process exits nonzero when any bytecode cell is
//! slower than its tree-walk baseline beyond the timing-noise margin
//! (`clap_bench::vm::GATE_NOISE_MARGIN`) — the CI smoke gate.

use clap_bench::vm;
use clap_obs::Observer;

fn main() {
    let mut check = false;
    let mut positional = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            positional.push(arg);
        }
    }
    let mut positional = positional.into_iter();
    let out_path = positional
        .next()
        .unwrap_or_else(|| "BENCH_vm.jsonl".to_owned());
    let repeats: u32 = positional.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let bench = vm::run(repeats);

    let observer = Observer::none().with_metrics(&out_path);
    observer.install();
    vm::emit_events(&bench);
    observer.flush().expect("write benchmark artifact");
    println!("wrote {out_path}");

    if check && !bench.bytecode_never_slower() {
        eprintln!("FAIL: bytecode backend slower than tree-walk in at least one cell");
        std::process::exit(1);
    }
}
