//! Emits `BENCH_explore.jsonl`: wall-clock of the record-phase sweep
//! ([`clap_core::Pipeline`]'s `record_failure`) for workers ∈ {1, 2, 4, 8}
//! on three workloads, plus the selected candidate seed so the
//! determinism contract is visible in the artifact (every worker count
//! reports the same seed).
//!
//! The artifact is the standard `clap-obs` JSONL stream (validate with
//! the `obsck` binary): one `bench.explore` header event and one
//! `bench.explore.cell` event per measurement.
//!
//! ```text
//! bench_explore [output.jsonl] [repeats]
//! ```

use clap_bench::explore;
use clap_obs::Observer;

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_explore.jsonl".to_owned());
    let repeats: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let bench = explore::run(repeats, 400);

    let observer = Observer::none().with_metrics(&out_path);
    observer.install();
    explore::emit_events(&bench);
    observer.flush().expect("write benchmark artifact");
    println!("wrote {out_path}");
}
