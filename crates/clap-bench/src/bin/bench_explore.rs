//! Emits `BENCH_explore.json`: wall-clock of the record-phase sweep
//! ([`Pipeline::record_failure`]) for workers ∈ {1, 2, 4, 8} on three
//! workloads, plus the selected candidate so the determinism contract is
//! visible in the artifact (every worker count reports the same seed).
//!
//! ```text
//! bench_explore [output.json] [repeats]
//! ```

use clap_bench::workload_config;
use clap_core::Pipeline;
use std::fmt::Write as _;
use std::time::Instant;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WORKLOADS: [&str; 3] = ["sim_race", "pbzip2", "bakery"];

struct Cell {
    workers: usize,
    best_millis: f64,
    seed: Option<u64>,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_explore.json".to_owned());
    let repeats: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"explore\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    json.push_str("  \"workloads\": [\n");

    for (wi, name) in WORKLOADS.iter().enumerate() {
        let workload = clap_workloads::by_name(name).expect("workload exists");
        let pipeline = Pipeline::new(workload.program());
        let mut config = workload_config(&workload);
        config.seed_budget = config.seed_budget.min(400);

        let mut cells = Vec::new();
        for workers in WORKER_COUNTS {
            config.explore_workers = workers;
            let mut best = f64::INFINITY;
            let mut seed = None;
            for _ in 0..repeats {
                let t0 = Instant::now();
                let recorded = pipeline.record_failure(&config).ok();
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
                seed = recorded.map(|r| r.seed);
            }
            eprintln!("{name}: workers={workers} best={best:.2}ms seed={seed:?}");
            cells.push(Cell {
                workers,
                best_millis: best,
                seed,
            });
        }

        let base = cells[0].best_millis;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{name}\",");
        let _ = writeln!(json, "      \"seed_budget\": {},", config.seed_budget);
        json.push_str("      \"results\": [\n");
        for (i, cell) in cells.iter().enumerate() {
            let seed = cell
                .seed
                .map(|s| s.to_string())
                .unwrap_or_else(|| "null".to_owned());
            let _ = write!(
                json,
                "        {{\"workers\": {}, \"millis\": {:.3}, \"speedup\": {:.3}, \"seed\": {}}}",
                cell.workers,
                cell.best_millis,
                base / cell.best_millis,
                seed
            );
            json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
        }
        json.push_str("      ]\n");
        let _ = write!(json, "    }}");
        json.push_str(if wi + 1 < WORKLOADS.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark artifact");
    println!("wrote {out_path}");
}
