//! Emits `BENCH_explore.jsonl`: wall-clock of the record-phase sweep
//! ([`clap_core::Pipeline`]'s `record_failure`) for workers ∈ {1, 2, 4, 8}
//! on three small workloads, plus large-budget scaling rows (10⁵–10⁶
//! seeds on the dedicated `scaling` workload, adaptive and forced-pool
//! variants) and the selected candidate seed so the determinism contract
//! is visible in the artifact (every worker count reports the same seed).
//!
//! The artifact is the standard `clap-obs` JSONL stream (validate with
//! the `obsck` binary): one `bench.explore` header event and one
//! `bench.explore.cell` event per measurement.
//!
//! ```text
//! bench_explore [output.jsonl] [repeats] [--budgets N,N,...] [--check] [--margin PCT]
//! ```
//!
//! `--check` turns the run into a perf-regression gate: every cell must
//! stay within `--margin` percent (default 25) of its row's 1-worker
//! baseline, i.e. requesting workers must never make the sweep
//! materially slower than sequential. Exit 1 on violation.

use clap_bench::explore;
use clap_obs::Observer;

fn main() {
    let mut out_path = "BENCH_explore.jsonl".to_owned();
    let mut repeats: u32 = 3;
    let mut budgets: Vec<u64> = vec![100_000];
    let mut check = false;
    let mut margin: f64 = 25.0;

    let mut positional = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--margin" => {
                margin = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--margin takes a percentage");
            }
            "--budgets" => {
                let list = args.next().expect("--budgets takes N,N,...");
                budgets = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("--budgets entries are integers"))
                    .collect();
            }
            other => {
                match positional {
                    0 => out_path = other.to_owned(),
                    1 => repeats = other.parse().expect("repeats is an integer"),
                    _ => panic!("unexpected argument: {other}"),
                }
                positional += 1;
            }
        }
    }

    let mut bench = explore::run(repeats, 400);
    bench
        .workloads
        .extend(explore::run_scaling(repeats, &budgets));

    let observer = Observer::none().with_metrics(&out_path);
    observer.install();
    explore::emit_events(&bench);
    observer.flush().expect("write benchmark artifact");
    println!("wrote {out_path}");

    if check {
        let violations = explore::check(&bench, margin);
        if violations.is_empty() {
            println!("explore gate: all cells within {margin:.0}% of their sequential baseline");
        } else {
            eprintln!("explore gate: {} violation(s)", violations.len());
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
