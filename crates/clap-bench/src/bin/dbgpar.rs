//! Diagnostic: why does the parallel search accept/reject candidates for
//! a workload? Reports the distribution of validation outcomes per
//! preemption level through the `clap-obs` collector.
//!
//! ```text
//! dbgpar [workload-name] [--trace t.json] [--metrics m.jsonl]
//! ```
//!
//! Default workload: peterson. The stderr summary is always on (it *is*
//! the diagnostic output); `--trace`/`--metrics` additionally export the
//! machine-readable sinks.

use clap_bench::split_obs_args;
use clap_constraints::{validate, ConstraintSystem, Schedule, ValidationError};
use clap_core::{Pipeline, PipelineConfig};
use clap_parallel::{for_each_csp_set, Generator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (rest, observer) = split_obs_args(&args).expect("bad arguments");
    let observer = observer.with_summary();
    let name = rest.first().cloned().unwrap_or_else(|| "peterson".into());

    let w = clap_workloads::by_name(&name).unwrap();
    let pipeline = Pipeline::new(w.program());
    let mut config = PipelineConfig::new(w.model);
    config.stickiness = w.stickiness.to_vec();
    config.seed_budget = w.seed_budget;
    let recorded = pipeline.record_failure(&config).unwrap();
    let trace = pipeline.symbolic_trace(&recorded).unwrap();
    let sys = ConstraintSystem::build(pipeline.program(), &trace, w.model);

    // Install after the setup work so the report covers only the probe
    // itself, not the record/symex phases.
    observer.install();
    clap_obs::event(
        "dbgpar.trace",
        &[
            ("workload", name.clone()),
            ("saps", trace.sap_count().to_string()),
            (
                "threads",
                format!(
                    "{:?}",
                    trace.per_thread.iter().map(Vec::len).collect::<Vec<_>>()
                ),
            ),
        ],
    );

    // The sequential solution for reference.
    let seq = clap_solver::solve(
        pipeline.program(),
        &sys,
        clap_solver::SolverConfig::default(),
    );
    let sol = seq.solution().unwrap();
    clap_obs::gauge(
        "dbgpar.seq_cs",
        i64::try_from(sol.schedule.context_switches(&trace)).unwrap_or(i64::MAX),
    );

    // Sample validation outcomes at each preemption level.
    for c in 0..=4usize {
        let _level = clap_obs::span("dbgpar.level");
        let mut ok = 0u64;
        let mut gen = Generator::new(pipeline.program(), &sys, 1_000_000);
        let mut n = 0u64;
        for_each_csp_set(&sys, c, 100_000, &mut |set| {
            gen.run(set, &mut |order| {
                n += 1;
                let s = Schedule {
                    order: order.to_vec(),
                };
                let label = match validate(pipeline.program(), &sys, &s) {
                    Ok(_) => {
                        ok += 1;
                        "ok"
                    }
                    Err(ValidationError::PathViolation { .. }) => "path",
                    Err(ValidationError::BugNotManifested) => "nobug",
                    Err(ValidationError::OrderViolation { .. }) => "order",
                    Err(ValidationError::LockViolation { .. }) => "lock",
                    Err(ValidationError::UnmatchedWait { .. }) => "wait",
                    Err(ValidationError::ChannelViolation { .. }) => "chan",
                    Err(ValidationError::BadAddress { .. }) => "addr",
                };
                clap_obs::add(&format!("dbgpar.level{c}.outcome.{label}"), 1);
                n < 1_000_000
            })
        });
        clap_obs::add(&format!("dbgpar.level{c}.generated"), n);
        if ok > 0 {
            break;
        }
    }

    if let Err(e) = observer.flush() {
        eprintln!("clap-obs: failed to write sink: {e}");
    }
}
