//! Diagnostic: why does the parallel search accept/reject candidates for
//! a workload? Prints the distribution of validation outcomes per
//! preemption level. Usage: `dbgpar [workload-name]` (default: peterson).

use clap_constraints::{validate, ConstraintSystem, Schedule, ValidationError};
use clap_core::{Pipeline, PipelineConfig};
use clap_parallel::{for_each_csp_set, Generator};
use std::collections::HashMap;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "peterson".into());
    let w = clap_workloads::by_name(&name).unwrap();
    let pipeline = Pipeline::new(w.program());
    let mut config = PipelineConfig::new(w.model);
    config.stickiness = w.stickiness.to_vec();
    config.seed_budget = w.seed_budget;
    let recorded = pipeline.record_failure(&config).unwrap();
    let trace = pipeline.symbolic_trace(&recorded).unwrap();
    println!(
        "saps={} threads={:?}",
        trace.sap_count(),
        trace.per_thread.iter().map(|t| t.len()).collect::<Vec<_>>()
    );
    let sys = ConstraintSystem::build(pipeline.program(), &trace, w.model);
    // The sequential solution for reference:
    let seq = clap_solver::solve(
        pipeline.program(),
        &sys,
        clap_solver::SolverConfig::default(),
    );
    let sol = seq.solution().unwrap();
    println!("seq cs = {}", sol.schedule.context_switches(&trace));
    // Sample validation errors at each level.
    for c in 0..=4usize {
        let mut errs: HashMap<String, u64> = HashMap::new();
        let mut gen = Generator::new(pipeline.program(), &sys, 1_000_000);
        let mut n = 0u64;
        for_each_csp_set(&sys, c, 100_000, &mut |set| {
            gen.run(set, &mut |order| {
                n += 1;
                let s = Schedule {
                    order: order.to_vec(),
                };
                match validate(pipeline.program(), &sys, &s) {
                    Ok(_) => {
                        *errs.entry("OK".into()).or_default() += 1;
                    }
                    Err(ValidationError::PathViolation { .. }) => {
                        *errs.entry("path".into()).or_default() += 1;
                    }
                    Err(ValidationError::BugNotManifested) => {
                        *errs.entry("nobug".into()).or_default() += 1;
                    }
                    Err(ValidationError::OrderViolation { .. }) => {
                        *errs.entry("order".into()).or_default() += 1;
                    }
                    Err(ValidationError::LockViolation { .. }) => {
                        *errs.entry("lock".into()).or_default() += 1;
                    }
                    Err(ValidationError::UnmatchedWait { .. }) => {
                        *errs.entry("wait".into()).or_default() += 1;
                    }
                    Err(ValidationError::BadAddress { .. }) => {
                        *errs.entry("addr".into()).or_default() += 1;
                    }
                }
                n < 1_000_000
            })
        });
        println!("level {c}: generated={n} outcomes={errs:?}");
        if errs.contains_key("OK") {
            break;
        }
    }
}
