//! Emits `BENCH_serve.jsonl`: the reproduction-service load generation —
//! N concurrent clients over the example corpus against a live
//! [`clap_serve::Server`], cold (every submission solves) vs. warm
//! (every submission is a content-addressed cache hit), plus the
//! backpressure shed phase on a deliberately undersized instance.
//!
//! The artifact is the standard `clap-obs` JSONL stream (validate with
//! the `obsck` binary): one `bench.serve` header, one `bench.serve.cell`
//! per timed submission, a `bench.serve.summary` comparison, and a
//! `bench.serve.shed` tally.
//!
//! ```text
//! bench_serve [output.jsonl] [clients] [corpus_dir]
//! ```

use clap_bench::serve;
use clap_obs::Observer;
use std::path::Path;

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_serve.jsonl".to_owned());
    let clients: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let corpus_dir = args.next().unwrap_or_else(|| "examples".to_owned());

    let corpus = serve::load_corpus(Path::new(&corpus_dir))
        .unwrap_or_else(|e| panic!("read corpus `{corpus_dir}`: {e}"));
    let bench = serve::run(&corpus, clients);

    let observer = Observer::none().with_metrics(&out_path);
    observer.install();
    serve::emit_events(&bench);
    observer.flush().expect("write benchmark artifact");
    println!("wrote {out_path}");
}
