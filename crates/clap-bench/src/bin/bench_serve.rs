//! Emits `BENCH_serve.jsonl`: the reproduction-service load generation —
//! N concurrent clients over the example corpus against a live
//! [`clap_serve::Server`], cold (every submission solves) vs. warm
//! (every submission is a content-addressed cache hit), plus the
//! backpressure shed phase on a deliberately undersized instance.
//!
//! The artifact is the standard `clap-obs` JSONL stream (validate with
//! the `obsck` binary): one `bench.serve` header, one `bench.serve.cell`
//! per timed submission, a `bench.serve.summary` comparison, and a
//! `bench.serve.shed` tally.
//!
//! ```text
//! bench_serve [output.jsonl] [clients] [corpus_dir]
//! ```

use clap_bench::serve;
use clap_obs::sink::validate_jsonl_line;
use clap_obs::Observer;
use std::path::Path;

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_serve.jsonl".to_owned());
    let clients: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let corpus_dir = args.next().unwrap_or_else(|| "examples".to_owned());

    let corpus = serve::load_corpus(Path::new(&corpus_dir))
        .unwrap_or_else(|e| panic!("read corpus `{corpus_dir}`: {e}"));
    let bench = serve::run(&corpus, clients);

    let observer = Observer::none().with_metrics(&out_path);
    observer.install();
    serve::emit_events(&bench);
    observer.flush().expect("write benchmark artifact");

    // The perf gate (`benchdiff --check`) compares against this file's
    // committed copy, so a run that "succeeds" while writing an empty or
    // malformed artifact would quietly disable the gate. Read the file
    // back, re-validate every line against the strict schema, and refuse
    // to exit cleanly unless it carries timed cells.
    let written = std::fs::read_to_string(&out_path).expect("read back benchmark artifact");
    let mut cells = 0usize;
    for (i, line) in written.lines().enumerate() {
        if let Err(e) = validate_jsonl_line(line) {
            eprintln!(
                "bench_serve: {out_path}:{}: invalid artifact line: {e}",
                i + 1
            );
            std::process::exit(1);
        }
        if line.contains("\"name\":\"bench.serve.cell\"") {
            cells += 1;
        }
    }
    if cells == 0 {
        eprintln!("bench_serve: {out_path} carries no bench.serve.cell events — refusing to pass");
        std::process::exit(1);
    }
    println!("wrote {out_path} ({cells} timed cells)");
}
