//! Regenerates **Figure 4**: two bug-reproducing schedules for the PSO
//! case of the running example — the sequential solver's solution (which
//! may interleave freely, like the paper's first solution) and the
//! parallel engine's minimal-context-switch solution (the paper's second).

use clap_constraints::ConstraintSystem;
use clap_core::{Pipeline, PipelineConfig};
use clap_parallel::{solve_parallel, ParallelConfig, ParallelOutcome};
use clap_solver::{solve, SolverConfig};

fn print_schedule(
    title: &str,
    program: &clap_ir::Program,
    trace: &clap_symex::SymTrace,
    schedule: &clap_constraints::Schedule,
) {
    println!(
        "{title} ({} context switches):",
        schedule.context_switches(trace)
    );
    for &s in &schedule.order {
        println!("  {}", trace.display_sap(program, s));
    }
    println!();
}

fn main() {
    let workload = clap_workloads::figure2();
    let pipeline = Pipeline::new(workload.program());
    let mut config = PipelineConfig::new(workload.model);
    config.stickiness = workload.stickiness.to_vec();
    config.seed_budget = workload.seed_budget;
    let recorded = pipeline
        .record_failure(&config)
        .expect("figure2 fails under PSO");
    let trace = pipeline.symbolic_trace(&recorded).expect("trace builds");
    let system = ConstraintSystem::build(pipeline.program(), &trace, workload.model);

    println!("Figure 4 — two solver solutions for the PSO case\n");

    let seq = solve(pipeline.program(), &system, SolverConfig::default());
    let seq_solution = seq.solution().expect("sequential solver finds a schedule");
    print_schedule(
        "Solution 1 (sequential solver)",
        pipeline.program(),
        &trace,
        &seq_solution.schedule,
    );

    let par = solve_parallel(pipeline.program(), &system, ParallelConfig::default());
    let ParallelOutcome::Found { schedule, cs, .. } = par else {
        panic!("parallel engine finds a schedule: {par:?}")
    };
    print_schedule(
        "Solution 2 (parallel engine, minimal preemptions)",
        pipeline.program(),
        &trace,
        &schedule,
    );
    println!(
        "The second solution reproduces the same failure with the minimal \
         number of preemptive context switches ({cs}), mirroring the paper's \
         bottom schedule in Figure 4."
    );
}
