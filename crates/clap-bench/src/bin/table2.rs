//! Regenerates **Table 2** (runtime and space overhead): native vs LEAP vs
//! CLAP execution time and log size per workload, with CLAP's reductions.

use clap_bench::{fmt_duration, table2_row};

fn fmt_bytes(b: usize) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}K", b as f64 / 1024.0)
    } else {
        format!("{:.2}M", b as f64 / (1024.0 * 1024.0))
    }
}

fn main() {
    let iterations: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    println!("Table 2 — recording overhead, native vs LEAP vs CLAP ({iterations} runs averaged, scaled workloads)");
    println!(
        "{:<10} {:>9} {:>16} {:>16} {:>7} {:>9} {:>9} {:>7}",
        "Program",
        "Native",
        "LEAP (ovh%)",
        "CLAP (ovh%)",
        "T-red%",
        "LEAP-log",
        "CLAP-log",
        "S-red%"
    );
    for workload in clap_workloads::table2_suite() {
        let r = table2_row(&workload, iterations);
        println!(
            "{:<10} {:>9} {:>9} ({:>4.0}%) {:>9} ({:>4.0}%) {:>6.1}% {:>9} {:>9} {:>6.1}%",
            r.name,
            fmt_duration(r.native),
            fmt_duration(r.leap),
            r.leap_overhead_pct(),
            fmt_duration(r.clap),
            r.clap_overhead_pct(),
            r.time_reduction_pct(),
            fmt_bytes(r.leap_bytes),
            fmt_bytes(r.clap_bytes),
            r.space_reduction_pct(),
        );
    }
}
