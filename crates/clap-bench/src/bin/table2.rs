//! Regenerates **Table 2** (runtime and space overhead): native vs LEAP vs
//! CLAP execution time and log size per workload, with CLAP's reductions.
//!
//! With `--metrics <path>` (and/or `--trace <path>`) the rows are also
//! published through the `clap-obs` JSONL sink as `bench.table2.row`
//! events.

use clap_bench::{fmt_duration, split_obs_args, table2_row};

fn fmt_bytes(b: usize) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}K", b as f64 / 1024.0)
    } else {
        format!("{:.2}M", b as f64 / (1024.0 * 1024.0))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (rest, observer) = split_obs_args(&args).expect("bad arguments");
    observer.install();
    let iterations: u32 = rest.first().and_then(|s| s.parse().ok()).unwrap_or(30);
    println!("Table 2 — recording overhead, native vs LEAP vs CLAP ({iterations} runs averaged, scaled workloads)");
    println!(
        "{:<10} {:>9} {:>16} {:>16} {:>7} {:>9} {:>9} {:>7}",
        "Program",
        "Native",
        "LEAP (ovh%)",
        "CLAP (ovh%)",
        "T-red%",
        "LEAP-log",
        "CLAP-log",
        "S-red%"
    );
    for workload in clap_workloads::table2_suite() {
        let r = table2_row(&workload, iterations);
        println!(
            "{:<10} {:>9} {:>9} ({:>4.0}%) {:>9} ({:>4.0}%) {:>6.1}% {:>9} {:>9} {:>6.1}%",
            r.name,
            fmt_duration(r.native),
            fmt_duration(r.leap),
            r.leap_overhead_pct(),
            fmt_duration(r.clap),
            r.clap_overhead_pct(),
            r.time_reduction_pct(),
            fmt_bytes(r.leap_bytes),
            fmt_bytes(r.clap_bytes),
            r.space_reduction_pct(),
        );
        clap_obs::event(
            "bench.table2.row",
            &[
                ("program", r.name.clone()),
                ("native_ns", r.native.as_nanos().to_string()),
                ("leap_ns", r.leap.as_nanos().to_string()),
                ("clap_ns", r.clap.as_nanos().to_string()),
                ("leap_bytes", r.leap_bytes.to_string()),
                ("clap_bytes", r.clap_bytes.to_string()),
                (
                    "time_reduction_pct",
                    format!("{:.1}", r.time_reduction_pct()),
                ),
                (
                    "space_reduction_pct",
                    format!("{:.1}", r.space_reduction_pct()),
                ),
            ],
        );
    }
    if let Err(e) = observer.flush() {
        eprintln!("clap-obs: failed to write sink: {e}");
    }
}
