//! Regenerates **Table 4** (the C11-atomics axis): each lock-free
//! workload's recorded C11 failure, re-encoded under SC, TSO, PSO, and
//! C11 — happens-before edge counts, order variables, clause totals, and
//! sequential solve time per model. Stronger models add more `F_mo`
//! edges until the recorded weak behavior becomes infeasible (Unsat).
//!
//! With `--metrics <path>` (and/or `--trace <path>`) every cell is also
//! published through the `clap-obs` JSONL sink as a `bench.atomics`
//! event, validated by `obsck`.

use clap_bench::{fmt_duration, split_obs_args, table4_row};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (_, observer) = split_obs_args(&args).expect("bad arguments");
    observer.install();
    println!("Table 4 — one recorded C11 failure under four memory models");
    println!(
        "{:<14} {:>5} {:<6} {:>9} {:>11} {:>9} {:>10} {:>6}",
        "Program", "#SAPs", "Model", "#HB-mo", "#OrderVars", "#Clauses", "T-solve", "Sat?"
    );
    for workload in clap_workloads::lockfree() {
        match table4_row(&workload) {
            Ok(r) => {
                for cell in &r.cells {
                    clap_obs::event(
                        "bench.atomics",
                        &[
                            ("program", r.name.clone()),
                            ("model", format!("{:?}", cell.model)),
                            ("hb_edges", cell.hb_edges.to_string()),
                            ("order_vars", cell.order_vars.to_string()),
                            ("clauses", cell.clauses.to_string()),
                            ("solve_ns", cell.solve_time.as_nanos().to_string()),
                            ("sat", cell.sat.to_string()),
                        ],
                    );
                    println!(
                        "{:<14} {:>5} {:<6} {:>9} {:>11} {:>9} {:>10} {:>6}",
                        r.name,
                        r.saps,
                        format!("{:?}", cell.model),
                        cell.hb_edges,
                        cell.order_vars,
                        cell.clauses,
                        fmt_duration(cell.solve_time),
                        if cell.sat { "Y" } else { "unsat" },
                    );
                }
            }
            Err(e) => println!("{:<14} FAILED: {e}", workload.name),
        }
    }
    println!("A `unsat` cell means the weak behavior the C11 run recorded cannot be");
    println!("serialized under that model's happens-before edges — the bug needs the");
    println!("relaxed ordering, which is the claim the lock-free suite demonstrates.");
    if let Err(e) = observer.flush() {
        eprintln!("clap-obs: failed to write sink: {e}");
    }
}
