//! Compares two `BENCH_*.jsonl` trajectories cell by cell — the CI perf
//! regression gate.
//!
//! ```text
//! benchdiff <old.jsonl> <new.jsonl> [--margin PCT] [--check] [--md PATH]
//!           [--metrics m.jsonl] [--trace t.json]
//! ```
//!
//! Prints the delta table (GitHub-flavored markdown) to stdout; `--md`
//! additionally writes it to a file for an artifact upload. Every metric
//! is lower-is-better wall time; a cell slower than `--margin` percent
//! (default 25, sized for CI runner noise) is a regression, and a cell
//! that vanished from the new artifact counts as a failure too — a
//! benchmark that stops running hides regressions. With `--check` any
//! failure exits nonzero.

use clap_bench::diff::diff;
use clap_bench::split_obs_args;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (rest, observer) = split_obs_args(&args).expect("bad arguments");

    let mut paths: Vec<String> = Vec::new();
    let mut margin_pct = 25.0f64;
    let mut check = false;
    let mut md_path: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--margin" => {
                margin_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--margin needs a percentage");
            }
            "--check" => check = true,
            "--md" => md_path = Some(it.next().expect("--md needs a path").clone()),
            other => paths.push(other.to_owned()),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("usage: benchdiff <old.jsonl> <new.jsonl> [--margin PCT] [--check] [--md PATH]");
        std::process::exit(2);
    };

    let read = |p: &String| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("benchdiff: cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let old = read(old_path);
    let new = read(new_path);

    observer.install();
    let d = diff(&old, &new, margin_pct).unwrap_or_else(|e| {
        eprintln!("benchdiff: {e}");
        std::process::exit(2);
    });
    d.emit_events(old_path, new_path);

    let md = d.render_markdown(old_path, new_path);
    print!("{md}");
    if let Some(path) = md_path {
        if let Err(e) = std::fs::write(&path, &md) {
            eprintln!("benchdiff: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    if let Err(e) = observer.flush() {
        eprintln!("clap-obs: failed to write sink: {e}");
    }
    if check && d.has_failures() {
        eprintln!(
            "benchdiff: {} regression(s), {} removed cell(s) — failing --check",
            d.regressions(),
            d.removed()
        );
        std::process::exit(1);
    }
}
