//! Diagnostic: where does the §4.3 generator dead-end on a workload?
//! Compares pruned vs unpruned generation at levels 0–2 and replays one
//! greedy unpruned run, reporting the per-thread frontier at the dead end
//! through the `clap-obs` collector.
//!
//! ```text
//! dbgdead [workload-name] [--trace t.json] [--metrics m.jsonl]
//! ```
//!
//! Default workload: pfscan. The stderr summary is always on (it *is*
//! the diagnostic output); `--trace`/`--metrics` additionally export the
//! machine-readable sinks.

use clap_bench::split_obs_args;
use clap_constraints::ConstraintSystem;
use clap_core::{Pipeline, PipelineConfig};
use clap_parallel::{for_each_csp_set, Generator};
use clap_symex::{SapId, SapKind, SymTrace};
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (rest, observer) = split_obs_args(&args).expect("bad arguments");
    let observer = observer.with_summary();
    let name = rest.first().cloned().unwrap_or_else(|| "pfscan".into());

    let w = clap_workloads::by_name(&name).unwrap();
    let pipeline = Pipeline::new(w.program());
    let mut config = PipelineConfig::new(w.model);
    config.stickiness = w.stickiness.to_vec();
    config.seed_budget = w.seed_budget;
    let recorded = pipeline.record_failure(&config).unwrap();
    let trace = pipeline.symbolic_trace(&recorded).unwrap();
    let sys = ConstraintSystem::build(pipeline.program(), &trace, w.model);

    // Install after the setup work so the report covers only the probe
    // itself, not the record/symex phases.
    observer.install();
    for (ti, saps) in trace.per_thread.iter().enumerate() {
        let kinds: Vec<String> = saps.iter().map(|&s| short(&trace, s)).collect();
        clap_obs::event(
            "dbgdead.thread",
            &[("thread", ti.to_string()), ("saps", kinds.join(" "))],
        );
    }
    for row in &sys.waits {
        clap_obs::event(
            "dbgdead.wait",
            &[
                ("wait", format!("{:?}", row.wait)),
                ("release", format!("{:?}", row.release)),
                ("signals", format!("{:?}", row.signals)),
                ("broadcasts", format!("{:?}", row.broadcasts)),
            ],
        );
    }

    for level in 0..=2usize {
        for pruned in [true, false] {
            let _span = clap_obs::span("dbgdead.generate");
            let mut gen = if pruned {
                Generator::new(pipeline.program(), &sys, 100_000)
            } else {
                Generator::without_pruning(&sys, 100_000)
            };
            let mode = if pruned { "pruned" } else { "unpruned" };
            let mut n = 0u64;
            for_each_csp_set(&sys, level, 10_000, &mut |set| {
                gen.run(set, &mut |order| {
                    n += 1;
                    let s = clap_constraints::Schedule {
                        order: order.to_vec(),
                    };
                    let label = match clap_constraints::validate(pipeline.program(), &sys, &s) {
                        Ok(_) => "ok".to_owned(),
                        Err(e) => format!("{e:?}")
                            .split_whitespace()
                            .next()
                            .unwrap()
                            .to_lowercase(),
                    };
                    clap_obs::add(&format!("dbgdead.level{level}.{mode}.outcome.{label}"), 1);
                    n < 100_000
                })
            });
            clap_obs::add(&format!("dbgdead.level{level}.{mode}.generated"), n);
        }
    }

    // One greedy structural run (no pruning, no CSPs) mirroring the
    // generator's switching rules; report the frontier at the dead end.
    let n = trace.sap_count();
    let mut succ = vec![Vec::new(); n];
    let mut indeg = vec![0u32; n];
    for &(a, b) in &sys.hard_edges {
        succ[a.index()].push(b.0);
        indeg[b.index()] += 1;
    }
    let mut wait_candidates: HashMap<u32, Vec<u32>> = HashMap::new();
    for row in &sys.waits {
        let cands = row
            .signals
            .iter()
            .chain(row.broadcasts.iter())
            .map(|s| s.0)
            .collect();
        wait_candidates.insert(row.wait.0, cands);
    }
    let mut done = vec![false; n];
    let mut order: Vec<u32> = Vec::new();
    let ready_of = |t: usize, done: &[bool], indeg: &[u32]| -> Vec<u32> {
        trace.per_thread[t]
            .iter()
            .map(|s| s.0)
            .filter(|&s| !done[s as usize] && indeg[s as usize] == 0)
            .filter(|&s| match wait_candidates.get(&s) {
                None => true,
                Some(c) => c.iter().any(|&x| done[x as usize]),
            })
            .collect()
    };
    let mut cur = 0usize;
    while order.len() < n {
        let ready = ready_of(cur, &done, &indeg);
        if let Some(&s) = ready.first() {
            done[s as usize] = true;
            order.push(s);
            for &y in &succ[s as usize] {
                indeg[y as usize] -= 1;
            }
            continue;
        }
        let next =
            (0..trace.thread_count()).find(|&t| t != cur && !ready_of(t, &done, &indeg).is_empty());
        match next {
            Some(t) => cur = t,
            None => break,
        }
    }
    clap_obs::add("dbgdead.greedy.emitted", order.len() as u64);
    clap_obs::add("dbgdead.greedy.total", n as u64);
    if order.len() < n {
        for t in 0..trace.thread_count() {
            let pending: Vec<&SapId> = trace.per_thread[t]
                .iter()
                .filter(|s| !done[s.index()])
                .collect();
            let Some(&&head) = pending.first() else {
                clap_obs::event(
                    "dbgdead.frontier",
                    &[("thread", t.to_string()), ("state", "exhausted".to_owned())],
                );
                continue;
            };
            let feasible = match wait_candidates.get(&head.0) {
                None => true,
                Some(c) => c.iter().any(|&x| done[x as usize]),
            };
            let blockers: Vec<String> = sys
                .hard_edges
                .iter()
                .filter(|&&(_, b)| b == head)
                .map(|&(a, _)| format!("{:?}:{}", a, short(&trace, a)))
                .collect();
            clap_obs::event(
                "dbgdead.frontier",
                &[
                    ("thread", t.to_string()),
                    ("next", format!("{head:?} ({})", short(&trace, head))),
                    ("indeg", indeg[head.index()].to_string()),
                    ("wake_feasible", feasible.to_string()),
                    ("pending", pending.len().to_string()),
                    ("blocked_on", blockers.join(", ")),
                ],
            );
        }
    }

    if let Err(e) = observer.flush() {
        eprintln!("clap-obs: failed to write sink: {e}");
    }
}

fn short(trace: &SymTrace, s: SapId) -> String {
    match trace.sap(s).kind {
        SapKind::Read { .. } => "R".into(),
        SapKind::Write { .. } => "W".into(),
        SapKind::Lock(m) => format!("L{}", m.0),
        SapKind::Unlock(m) => format!("U{}", m.0),
        SapKind::Wait { cond, .. } => format!("wait{}", cond.0),
        SapKind::Signal(c) => format!("sig{}", c.0),
        SapKind::Broadcast(c) => format!("bc{}", c.0),
        SapKind::Fork { child } => format!("fork{}", child.0),
        SapKind::Join { child } => format!("join{}", child.0),
        SapKind::Send { chan, .. } => format!("snd{}", chan.0),
        SapKind::Recv { chan, .. } => format!("rcv{}", chan.0),
        SapKind::TrySend { chan, .. } => format!("tsnd{}", chan.0),
        SapKind::TryRecv { chan, .. } => format!("trcv{}", chan.0),
        SapKind::ChanClose(c) => format!("cls{}", c.0),
        SapKind::SpawnActor { child } => format!("spawn{}", child.0),
        SapKind::MailboxSend { target, .. } => format!("mbs{}", target.0),
        SapKind::MailboxRecv { .. } => "mbr".into(),
        SapKind::AtomicLoad { .. } => "aR".into(),
        SapKind::AtomicStore { .. } => "aW".into(),
        SapKind::AtomicRmw { .. } => "aRmw".into(),
        SapKind::AtomicCas { .. } => "aCas".into(),
    }
}
