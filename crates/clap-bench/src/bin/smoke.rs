//! Quick pipeline smoke test over every workload.
use clap_core::{Pipeline, PipelineConfig, SolverChoice};
use clap_solver::SolverConfig;
use std::time::Instant;

fn main() {
    let deadline_per = std::time::Duration::from_secs(60);
    for w in clap_workloads::all() {
        let t0 = Instant::now();
        let pipeline = Pipeline::new(w.program());
        let mut config = PipelineConfig::new(w.model);
        config.stickiness = w.stickiness.to_vec();
        config.seed_budget = w.seed_budget;
        config.solver = SolverChoice::Sequential(SolverConfig {
            timeout: Some(deadline_per),
            max_decisions: 0,
        });
        match pipeline.reproduce(&config) {
            Ok(r) => println!(
                "{:10} OK  threads={} sv={} inst={} br={} saps={} clauses={} vars={} cs={} tsym={:?} tsolve={:?} log={}B reproduced={}",
                w.name, r.threads, r.shared_vars, r.instructions, r.branches, r.saps,
                r.constraints.total_clauses(), r.constraints.total_vars(),
                r.context_switches, r.time_symbolic, r.time_solve, r.log_bytes, r.reproduced
            ),
            Err(e) => println!("{:10} ERR {e} (elapsed {:?})", w.name, t0.elapsed()),
        }
    }
}
