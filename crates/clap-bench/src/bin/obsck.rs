//! Validates a `clap-obs` JSONL metrics file: every line must match the
//! schema in `clap_obs::sink::JSONL_SCHEMA`. Prints a per-record-type
//! tally and exits non-zero on the first violation. Used by CI to gate
//! the observability smoke run.
//!
//! ```text
//! obsck <metrics.jsonl>
//! ```

use clap_obs::sink::validate_jsonl_line;
use std::collections::BTreeMap;

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: obsck <metrics.jsonl>");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obsck: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let mut tally: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        match validate_jsonl_line(line) {
            Ok(ty) => *tally.entry(ty).or_default() += 1,
            Err(e) => {
                eprintln!("obsck: {path}:{}: {e}", i + 1);
                std::process::exit(1);
            }
        }
    }
    if tally.get("meta") != Some(&1) {
        eprintln!("obsck: {path}: expected exactly one meta line");
        std::process::exit(1);
    }
    let total: u64 = tally.values().sum();
    let breakdown: Vec<String> = tally.iter().map(|(t, n)| format!("{n} {t}")).collect();
    println!(
        "obsck: {path}: {total} valid lines ({})",
        breakdown.join(", ")
    );
}
