//! Regenerates **Table 1** (overall bug-reproduction effectiveness): for
//! every workload, the execution characteristics, constraint-system size,
//! phase timings, context switches, and whether CLAP reproduced the bug.

use clap_bench::{fmt_duration, table1_row};

fn main() {
    println!("Table 1 — CLAP bug-reproduction effectiveness (sequential solver)");
    println!(
        "{:<10} {:>4} {:>8} {:>4} {:>7} {:>6} {:>6} {:>12} {:>10} {:>9} {:>9} {:>4} {:>8}",
        "Program",
        "LOC",
        "#Threads",
        "#SV",
        "#Inst",
        "#Br",
        "#SAPs",
        "#Constraints",
        "#Variables",
        "T-symb",
        "T-solve",
        "#cs",
        "success?"
    );
    for workload in clap_workloads::all() {
        match table1_row(&workload) {
            Ok(r) => println!(
                "{:<10} {:>4} {:>8} {:>4} {:>7} {:>6} {:>6} {:>12} {:>10} {:>9} {:>9} {:>4} {:>8}",
                r.name,
                r.loc,
                r.threads,
                r.shared_vars,
                r.instructions,
                r.branches,
                r.saps,
                r.constraints,
                r.variables,
                fmt_duration(r.time_symbolic),
                fmt_duration(r.time_solve),
                r.cs,
                if r.success { "Y" } else { "N" },
            ),
            Err(e) => println!("{:<10} FAILED: {e}", workload.name),
        }
    }
}
