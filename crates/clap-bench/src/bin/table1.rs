//! Regenerates **Table 1** (overall bug-reproduction effectiveness): for
//! every workload, the execution characteristics, constraint-system size,
//! phase timings, context switches, and whether CLAP reproduced the bug.
//!
//! With `--metrics <path>` (and/or `--trace <path>`) the rows are also
//! published through the `clap-obs` JSONL sink as `bench.table1.row`
//! events.

use clap_bench::{fmt_duration, split_obs_args, table1_row};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (_, observer) = split_obs_args(&args).expect("bad arguments");
    observer.install();
    println!("Table 1 — CLAP bug-reproduction effectiveness (sequential solver)");
    println!(
        "{:<10} {:>4} {:>8} {:>4} {:>7} {:>6} {:>6} {:>12} {:>10} {:>9} {:>9} {:>4} {:>8}",
        "Program",
        "LOC",
        "#Threads",
        "#SV",
        "#Inst",
        "#Br",
        "#SAPs",
        "#Constraints",
        "#Variables",
        "T-symb",
        "T-solve",
        "#cs",
        "success?"
    );
    for workload in clap_workloads::all() {
        match table1_row(&workload) {
            Ok(r) => {
                println!(
                    "{:<10} {:>4} {:>8} {:>4} {:>7} {:>6} {:>6} {:>12} {:>10} {:>9} {:>9} {:>4} {:>8}",
                    r.name,
                    r.loc,
                    r.threads,
                    r.shared_vars,
                    r.instructions,
                    r.branches,
                    r.saps,
                    r.constraints,
                    r.variables,
                    fmt_duration(r.time_symbolic),
                    fmt_duration(r.time_solve),
                    r.cs,
                    if r.success { "Y" } else { "N" },
                );
                clap_obs::event(
                    "bench.table1.row",
                    &[
                        ("program", r.name.clone()),
                        ("loc", r.loc.to_string()),
                        ("threads", r.threads.to_string()),
                        ("shared_vars", r.shared_vars.to_string()),
                        ("instructions", r.instructions.to_string()),
                        ("branches", r.branches.to_string()),
                        ("saps", r.saps.to_string()),
                        ("constraints", r.constraints.to_string()),
                        ("variables", r.variables.to_string()),
                        ("time_symbolic_ns", r.time_symbolic.as_nanos().to_string()),
                        ("time_solve_ns", r.time_solve.as_nanos().to_string()),
                        ("cs", r.cs.to_string()),
                        ("success", r.success.to_string()),
                    ],
                );
            }
            Err(e) => println!("{:<10} FAILED: {e}", workload.name),
        }
    }
    if let Err(e) = observer.flush() {
        eprintln!("clap-obs: failed to write sink: {e}");
    }
}
