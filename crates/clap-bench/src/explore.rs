//! The exploration-scaling sweep behind the `bench_explore` binary:
//! wall-clock of the record-phase sweep ([`clap_core::Pipeline`]'s
//! `record_failure`) for workers ∈ {1, 2, 4, 8} on three workloads, plus
//! the selected candidate seed so the determinism contract is visible in
//! the artifact (every worker count reports the same seed).
//!
//! Results are published through the [`clap_obs`] JSONL sink as
//! `bench.explore` / `bench.explore.cell` events. The previous
//! hand-rolled JSON rendering survives as [`legacy_json`] so the
//! format-agreement test can prove both paths carry the same numbers.

use crate::workload_config;
use clap_core::Pipeline;
use std::fmt::Write as _;
use std::time::Instant;

/// Worker counts swept per workload.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Workloads swept (small → mid-size).
pub const WORKLOADS: [&str; 3] = ["sim_race", "pbzip2", "bakery"];

/// One (workload, workers) measurement.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Worker count of this cell.
    pub workers: usize,
    /// Best wall-clock over the repeats, in milliseconds.
    pub millis: f64,
    /// Speedup vs the 1-worker cell of the same workload.
    pub speedup: f64,
    /// Seed of the selected candidate (None when no failure was found).
    pub seed: Option<u64>,
}

/// One workload's row of cells.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name.
    pub name: String,
    /// The (possibly capped) seed budget used.
    pub seed_budget: u64,
    /// One cell per entry of [`WORKER_COUNTS`].
    pub cells: Vec<Cell>,
}

/// A complete sweep result.
#[derive(Debug, Clone)]
pub struct ExploreBench {
    /// Cores available on the measuring host.
    pub host_cores: usize,
    /// Repeats per cell (best-of).
    pub repeats: u32,
    /// One entry per swept workload.
    pub workloads: Vec<WorkloadResult>,
}

/// Runs the sweep: `repeats` best-of runs per (workload, workers) cell,
/// with each workload's seed budget capped at `budget_cap`.
pub fn run(repeats: u32, budget_cap: u64) -> ExploreBench {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut workloads = Vec::new();
    for name in WORKLOADS {
        let workload = clap_workloads::by_name(name).expect("workload exists");
        let pipeline = Pipeline::new(workload.program());
        let mut config = workload_config(&workload);
        config.seed_budget = config.seed_budget.min(budget_cap);

        let mut cells = Vec::new();
        for workers in WORKER_COUNTS {
            config.explore_workers = workers;
            let mut best = f64::INFINITY;
            let mut seed = None;
            for _ in 0..repeats {
                let t0 = Instant::now();
                let recorded = pipeline.record_failure(&config).ok();
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
                seed = recorded.map(|r| r.seed);
            }
            eprintln!("{name}: workers={workers} best={best:.2}ms seed={seed:?}");
            cells.push(Cell {
                workers,
                millis: best,
                speedup: 0.0,
                seed,
            });
        }
        let base = cells[0].millis;
        for cell in &mut cells {
            cell.speedup = base / cell.millis;
        }
        workloads.push(WorkloadResult {
            name: name.to_owned(),
            seed_budget: config.seed_budget,
            cells,
        });
    }
    ExploreBench {
        host_cores,
        repeats,
        workloads,
    }
}

/// Records the sweep into the global [`clap_obs`] collector: one
/// `bench.explore` header event plus one `bench.explore.cell` event per
/// measurement. Flushing an observer with a metrics path then yields the
/// JSONL artifact.
pub fn emit_events(bench: &ExploreBench) {
    clap_obs::event(
        "bench.explore",
        &[
            ("host_cores", bench.host_cores.to_string()),
            ("repeats", bench.repeats.to_string()),
        ],
    );
    for w in &bench.workloads {
        for cell in &w.cells {
            clap_obs::event(
                "bench.explore.cell",
                &[
                    ("workload", w.name.clone()),
                    ("seed_budget", w.seed_budget.to_string()),
                    ("workers", cell.workers.to_string()),
                    ("millis", format!("{:.3}", cell.millis)),
                    ("speedup", format!("{:.3}", cell.speedup)),
                    (
                        "seed",
                        cell.seed
                            .map_or_else(|| "none".to_owned(), |s| s.to_string()),
                    ),
                ],
            );
        }
    }
}

/// The retired hand-rolled JSON rendering of a sweep, byte-compatible
/// with the old `BENCH_explore.json` artifact. Kept only so the
/// format-agreement test can check the JSONL events against it; no
/// binary writes this format anymore.
pub fn legacy_json(bench: &ExploreBench) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"explore\",");
    let _ = writeln!(json, "  \"host_cores\": {},", bench.host_cores);
    let _ = writeln!(json, "  \"repeats\": {},", bench.repeats);
    json.push_str("  \"workloads\": [\n");
    for (wi, w) in bench.workloads.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(json, "      \"seed_budget\": {},", w.seed_budget);
        json.push_str("      \"results\": [\n");
        for (i, cell) in w.cells.iter().enumerate() {
            let seed = cell
                .seed
                .map(|s| s.to_string())
                .unwrap_or_else(|| "null".to_owned());
            let _ = write!(
                json,
                "        {{\"workers\": {}, \"millis\": {:.3}, \"speedup\": {:.3}, \"seed\": {}}}",
                cell.workers, cell.millis, cell.speedup, seed
            );
            json.push_str(if i + 1 < w.cells.len() { ",\n" } else { "\n" });
        }
        json.push_str("      ]\n");
        let _ = write!(json, "    }}");
        json.push_str(if wi + 1 < bench.workloads.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExploreBench {
        ExploreBench {
            host_cores: 8,
            repeats: 3,
            workloads: vec![WorkloadResult {
                name: "sim_race".to_owned(),
                seed_budget: 400,
                cells: vec![
                    Cell {
                        workers: 1,
                        millis: 10.0,
                        speedup: 1.0,
                        seed: Some(17),
                    },
                    Cell {
                        workers: 2,
                        millis: 5.0,
                        speedup: 2.0,
                        seed: Some(17),
                    },
                    Cell {
                        workers: 4,
                        millis: 4.0,
                        speedup: 2.5,
                        seed: None,
                    },
                ],
            }],
        }
    }

    /// The JSONL event stream and the retired hand-rolled JSON carry the
    /// same numbers for the same sweep — checked cell by cell before the
    /// old writer was deleted.
    #[test]
    fn jsonl_events_agree_with_legacy_format() {
        let bench = sample();

        // Legacy side: parse the hand-rolled document.
        let legacy = clap_obs::json::parse(&legacy_json(&bench)).expect("legacy JSON parses");
        assert_eq!(legacy.get("bench").unwrap().as_str(), Some("explore"));
        assert_eq!(legacy.get("host_cores").unwrap().as_num(), Some(8.0));
        assert_eq!(legacy.get("repeats").unwrap().as_num(), Some(3.0));

        // Event side: run the new emitter through the collector.
        let _l = clap_obs::test_lock();
        clap_obs::reset();
        clap_obs::enable();
        emit_events(&bench);
        clap_obs::disable();
        let snap = clap_obs::snapshot();
        let cells: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.name == "bench.explore.cell")
            .collect();

        let workloads = legacy.get("workloads").unwrap().as_arr().unwrap();
        let mut legacy_cells = Vec::new();
        for w in workloads {
            let name = w.get("name").unwrap().as_str().unwrap();
            for r in w.get("results").unwrap().as_arr().unwrap() {
                legacy_cells.push((
                    name.to_owned(),
                    r.get("workers").unwrap().as_num().unwrap(),
                    r.get("millis").unwrap().as_num().unwrap(),
                    r.get("speedup").unwrap().as_num().unwrap(),
                    r.get("seed").and_then(clap_obs::json::Value::as_num),
                ));
            }
        }
        assert_eq!(cells.len(), legacy_cells.len());
        for (event, (name, workers, millis, speedup, seed)) in cells.iter().zip(&legacy_cells) {
            let field = |k: &str| {
                event
                    .fields
                    .iter()
                    .find(|(fk, _)| fk == k)
                    .map(|(_, v)| v.as_str())
                    .unwrap()
            };
            assert_eq!(field("workload"), name);
            assert_eq!(field("workers").parse::<f64>().unwrap(), *workers);
            assert_eq!(field("millis").parse::<f64>().unwrap(), *millis);
            assert_eq!(field("speedup").parse::<f64>().unwrap(), *speedup);
            match seed {
                Some(s) => assert_eq!(field("seed").parse::<f64>().unwrap(), *s),
                None => assert_eq!(field("seed"), "none"),
            }
        }
    }
}
