//! The exploration-scaling sweep behind the `bench_explore` binary:
//! wall-clock of the record-phase sweep ([`clap_core::Pipeline`]'s
//! `record_failure`) for workers ∈ {1, 2, 4, 8} on three workloads, plus
//! the selected candidate seed so the determinism contract is visible in
//! the artifact (every worker count reports the same seed).
//!
//! Results are published through the [`clap_obs`] JSONL sink as
//! `bench.explore` / `bench.explore.cell` events. The previous
//! hand-rolled JSON rendering survives as [`legacy_json`] so the
//! format-agreement test can prove both paths carry the same numbers.

use crate::workload_config;
use clap_core::{ExploreCutover, Pipeline};
use std::fmt::Write as _;
use std::time::Instant;

/// Worker counts swept per workload.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Workloads swept (small → mid-size).
pub const WORKLOADS: [&str; 3] = ["sim_race", "pbzip2", "bakery"];
/// Worker counts swept for the large-budget scaling rows.
pub const SCALING_WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// One (workload, workers) measurement.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Worker count of this cell.
    pub workers: usize,
    /// Best wall-clock over the repeats, in milliseconds.
    pub millis: f64,
    /// Speedup vs the 1-worker cell of the same workload.
    pub speedup: f64,
    /// Seed of the selected candidate (None when no failure was found).
    pub seed: Option<u64>,
}

/// One workload's row of cells.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name.
    pub name: String,
    /// The (possibly capped) seed budget used.
    pub seed_budget: u64,
    /// One cell per entry of [`WORKER_COUNTS`].
    pub cells: Vec<Cell>,
}

/// A complete sweep result.
#[derive(Debug, Clone)]
pub struct ExploreBench {
    /// Cores available on the measuring host.
    pub host_cores: usize,
    /// Repeats per cell (best-of).
    pub repeats: u32,
    /// One entry per swept workload.
    pub workloads: Vec<WorkloadResult>,
}

/// One timed measurement of `record_failure`. Sub-millisecond sweeps
/// are re-timed over an inner batch sized to ~10 ms of work and
/// averaged: on a shared host, a single 0.1 ms sample is dominated by
/// scheduler jitter, and best-of repeats alone cannot rescue it.
fn measure(pipeline: &Pipeline, config: &clap_core::PipelineConfig) -> (f64, Option<u64>) {
    let t0 = Instant::now();
    let recorded = pipeline.record_failure(config).ok();
    let once = t0.elapsed().as_secs_f64() * 1e3;
    let seed = recorded.map(|r| r.seed);
    if once >= 2.0 {
        return (once, seed);
    }
    let iters = ((10.0 / once.max(0.001)) as u32).clamp(4, 128);
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = pipeline.record_failure(config);
    }
    (t0.elapsed().as_secs_f64() * 1e3 / f64::from(iters), seed)
}

/// Runs the sweep: `repeats` best-of runs per (workload, workers) cell,
/// with each workload's seed budget capped at `budget_cap`.
pub fn run(repeats: u32, budget_cap: u64) -> ExploreBench {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut workloads = Vec::new();
    for name in WORKLOADS {
        let workload = clap_workloads::by_name(name).expect("workload exists");
        let pipeline = Pipeline::new(workload.program());
        let mut config = workload_config(&workload);
        config.seed_budget = config.seed_budget.min(budget_cap);

        // Repeats are interleaved across worker counts so slow drift in
        // host load lands on every cell evenly instead of biasing the
        // counts measured later.
        let mut best = [f64::INFINITY; WORKER_COUNTS.len()];
        let mut seeds = [None; WORKER_COUNTS.len()];
        for _ in 0..repeats {
            for (i, workers) in WORKER_COUNTS.into_iter().enumerate() {
                config.explore_workers = workers;
                let (millis, s) = measure(&pipeline, &config);
                best[i] = best[i].min(millis);
                seeds[i] = s;
            }
        }
        let mut cells = Vec::new();
        for (i, workers) in WORKER_COUNTS.into_iter().enumerate() {
            eprintln!(
                "{name}: workers={workers} best={:.2}ms seed={:?}",
                best[i], seeds[i]
            );
            cells.push(Cell {
                workers,
                millis: best[i],
                speedup: 0.0,
                seed: seeds[i],
            });
        }
        let base = cells[0].millis;
        for cell in &mut cells {
            cell.speedup = base / cell.millis;
        }
        workloads.push(WorkloadResult {
            name: name.to_owned(),
            seed_budget: config.seed_budget,
            cells,
        });
    }
    ExploreBench {
        host_cores,
        repeats,
        workloads,
    }
}

/// Runs the large-budget scaling rows on the dedicated
/// [`clap_workloads::scaling`] workload (a correct program, so every
/// sweep runs its full budget — the worst case for the pool). Two rows
/// per budget:
///
/// - `scaling`: the production configuration (adaptive cutover) — what a
///   user actually gets at each `--workers` setting;
/// - `scaling_forced`: the pool forced on via
///   [`ExploreCutover::Fixed`]`(0)` for workers > 1 — isolates the raw
///   pool overhead (startup, chunked claiming, collection) against the
///   same row's sequential baseline, even on hosts where the adaptive
///   policy would (correctly) refuse to go parallel.
pub fn run_scaling(repeats: u32, budgets: &[u64]) -> Vec<WorkloadResult> {
    let workload = clap_workloads::scaling();
    let pipeline = Pipeline::new(workload.program());
    let mut rows = Vec::new();
    for &budget in budgets {
        for (name, cutover) in [
            ("scaling", ExploreCutover::Adaptive),
            ("scaling_forced", ExploreCutover::Fixed(0)),
        ] {
            let mut config = workload_config(&workload);
            config.seed_budget = budget;
            config.explore_cutover = cutover;
            // Interleaved repeats, as in [`run`]: at 10⁶-seed budgets one
            // cell takes seconds, so sequential-then-parallel ordering
            // would fold minutes of host-load drift into the speedup.
            let mut best = [f64::INFINITY; SCALING_WORKER_COUNTS.len()];
            let mut seeds = [None; SCALING_WORKER_COUNTS.len()];
            for _ in 0..repeats {
                for (i, workers) in SCALING_WORKER_COUNTS.into_iter().enumerate() {
                    config.explore_workers = workers;
                    let (millis, s) = measure(&pipeline, &config);
                    best[i] = best[i].min(millis);
                    seeds[i] = s;
                }
            }
            let mut cells = Vec::new();
            for (i, workers) in SCALING_WORKER_COUNTS.into_iter().enumerate() {
                eprintln!(
                    "{name}: budget={budget} workers={workers} best={:.2}ms",
                    best[i]
                );
                cells.push(Cell {
                    workers,
                    millis: best[i],
                    speedup: 0.0,
                    seed: seeds[i],
                });
            }
            let base = cells[0].millis;
            for cell in &mut cells {
                cell.speedup = base / cell.millis;
            }
            rows.push(WorkloadResult {
                name: name.to_owned(),
                seed_budget: budget,
                cells,
            });
        }
    }
    rows
}

/// The within-run regression gate behind `bench_explore --check`,
/// mirroring the VM bench gate: every cell must stay within `margin_pct`
/// of its row's 1-worker baseline — requesting workers must never make
/// the sweep materially slower than sequential, at any budget. Returns
/// the violations (empty = pass).
///
/// `*_forced` rows are exempt: they bypass the production planner
/// ([`ExploreCutover::Fixed`]`(0)`) precisely to measure what the pool
/// costs on hosts where the adaptive policy would refuse it, so "slower
/// than sequential" is their expected reading on a small machine — the
/// gate's invariant only covers configurations a user can reach.
pub fn check(bench: &ExploreBench, margin_pct: f64) -> Vec<String> {
    let mut violations = Vec::new();
    for w in &bench.workloads {
        if w.name.ends_with("_forced") {
            continue;
        }
        let Some(base) = w.cells.iter().find(|c| c.workers == 1) else {
            continue;
        };
        for cell in &w.cells {
            if cell.millis > base.millis * (1.0 + margin_pct / 100.0) {
                violations.push(format!(
                    "{} (budget {}): workers={} took {:.2}ms vs sequential {:.2}ms \
                     (beyond {margin_pct:.0}% margin)",
                    w.name, w.seed_budget, cell.workers, cell.millis, base.millis,
                ));
            }
        }
    }
    violations
}

/// Records the sweep into the global [`clap_obs`] collector: one
/// `bench.explore` header event plus one `bench.explore.cell` event per
/// measurement. Flushing an observer with a metrics path then yields the
/// JSONL artifact.
pub fn emit_events(bench: &ExploreBench) {
    clap_obs::event(
        "bench.explore",
        &[
            ("host_cores", bench.host_cores.to_string()),
            ("repeats", bench.repeats.to_string()),
        ],
    );
    for w in &bench.workloads {
        for cell in &w.cells {
            clap_obs::event(
                "bench.explore.cell",
                &[
                    ("workload", w.name.clone()),
                    ("seed_budget", w.seed_budget.to_string()),
                    ("workers", cell.workers.to_string()),
                    ("millis", format!("{:.3}", cell.millis)),
                    ("speedup", format!("{:.3}", cell.speedup)),
                    (
                        "seed",
                        cell.seed
                            .map_or_else(|| "none".to_owned(), |s| s.to_string()),
                    ),
                ],
            );
        }
    }
}

/// The retired hand-rolled JSON rendering of a sweep, byte-compatible
/// with the old `BENCH_explore.json` artifact. Kept only so the
/// format-agreement test can check the JSONL events against it; no
/// binary writes this format anymore.
pub fn legacy_json(bench: &ExploreBench) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"explore\",");
    let _ = writeln!(json, "  \"host_cores\": {},", bench.host_cores);
    let _ = writeln!(json, "  \"repeats\": {},", bench.repeats);
    json.push_str("  \"workloads\": [\n");
    for (wi, w) in bench.workloads.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(json, "      \"seed_budget\": {},", w.seed_budget);
        json.push_str("      \"results\": [\n");
        for (i, cell) in w.cells.iter().enumerate() {
            let seed = cell
                .seed
                .map(|s| s.to_string())
                .unwrap_or_else(|| "null".to_owned());
            let _ = write!(
                json,
                "        {{\"workers\": {}, \"millis\": {:.3}, \"speedup\": {:.3}, \"seed\": {}}}",
                cell.workers, cell.millis, cell.speedup, seed
            );
            json.push_str(if i + 1 < w.cells.len() { ",\n" } else { "\n" });
        }
        json.push_str("      ]\n");
        let _ = write!(json, "    }}");
        json.push_str(if wi + 1 < bench.workloads.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExploreBench {
        ExploreBench {
            host_cores: 8,
            repeats: 3,
            workloads: vec![WorkloadResult {
                name: "sim_race".to_owned(),
                seed_budget: 400,
                cells: vec![
                    Cell {
                        workers: 1,
                        millis: 10.0,
                        speedup: 1.0,
                        seed: Some(17),
                    },
                    Cell {
                        workers: 2,
                        millis: 5.0,
                        speedup: 2.0,
                        seed: Some(17),
                    },
                    Cell {
                        workers: 4,
                        millis: 4.0,
                        speedup: 2.5,
                        seed: None,
                    },
                ],
            }],
        }
    }

    /// The `--check` gate passes cells near their sequential baseline and
    /// flags the ones a pool regression would slow down.
    #[test]
    fn check_flags_cells_beyond_margin() {
        let mut bench = sample();
        assert!(check(&bench, 25.0).is_empty(), "faster cells must pass");
        bench.workloads[0].cells[2].millis = 100.0;
        let violations = check(&bench, 25.0);
        assert_eq!(
            violations.len(),
            1,
            "exactly the slowed cell: {violations:?}"
        );
        assert!(violations[0].contains("workers=4"), "{violations:?}");

        // Forced-pool diagnostic rows are exempt: they exist to measure
        // pool overhead on hosts where the planner would stay sequential.
        let mut forced = bench.workloads[0].clone();
        forced.name = "scaling_forced".to_owned();
        bench.workloads = vec![forced];
        assert!(check(&bench, 25.0).is_empty(), "forced rows are not gated");
    }

    /// The JSONL event stream and the retired hand-rolled JSON carry the
    /// same numbers for the same sweep — checked cell by cell before the
    /// old writer was deleted.
    #[test]
    fn jsonl_events_agree_with_legacy_format() {
        let bench = sample();

        // Legacy side: parse the hand-rolled document.
        let legacy = clap_obs::json::parse(&legacy_json(&bench)).expect("legacy JSON parses");
        assert_eq!(legacy.get("bench").unwrap().as_str(), Some("explore"));
        assert_eq!(legacy.get("host_cores").unwrap().as_num(), Some(8.0));
        assert_eq!(legacy.get("repeats").unwrap().as_num(), Some(3.0));

        // Event side: run the new emitter through the collector.
        let _l = clap_obs::test_lock();
        clap_obs::reset();
        clap_obs::enable();
        emit_events(&bench);
        clap_obs::disable();
        let snap = clap_obs::snapshot();
        let cells: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.name == "bench.explore.cell")
            .collect();

        let workloads = legacy.get("workloads").unwrap().as_arr().unwrap();
        let mut legacy_cells = Vec::new();
        for w in workloads {
            let name = w.get("name").unwrap().as_str().unwrap();
            for r in w.get("results").unwrap().as_arr().unwrap() {
                legacy_cells.push((
                    name.to_owned(),
                    r.get("workers").unwrap().as_num().unwrap(),
                    r.get("millis").unwrap().as_num().unwrap(),
                    r.get("speedup").unwrap().as_num().unwrap(),
                    r.get("seed").and_then(clap_obs::json::Value::as_num),
                ));
            }
        }
        assert_eq!(cells.len(), legacy_cells.len());
        for (event, (name, workers, millis, speedup, seed)) in cells.iter().zip(&legacy_cells) {
            let field = |k: &str| {
                event
                    .fields
                    .iter()
                    .find(|(fk, _)| fk == k)
                    .map(|(_, v)| v.as_str())
                    .unwrap()
            };
            assert_eq!(field("workload"), name);
            assert_eq!(field("workers").parse::<f64>().unwrap(), *workers);
            assert_eq!(field("millis").parse::<f64>().unwrap(), *millis);
            assert_eq!(field("speedup").parse::<f64>().unwrap(), *speedup);
            match seed {
                Some(s) => assert_eq!(field("seed").parse::<f64>().unwrap(), *s),
                None => assert_eq!(field("seed"), "none"),
            }
        }
    }
}
