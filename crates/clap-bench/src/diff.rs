//! Trajectory comparison behind the `benchdiff` binary and the CI perf
//! gate: parses two `BENCH_*.jsonl` artifacts (any of the explore, vm or
//! serve trajectories), pairs their benchmark cells, and classifies each
//! pair against a noise margin. Every metric here is *lower-is-better*
//! wall time, so a positive delta is a slowdown.
//!
//! A cell present in the old artifact but missing from the new one is a
//! [`DiffStatus::Removed`] — and a gate failure: a benchmark that
//! silently stops running is indistinguishable from a regression nobody
//! can see. New cells are [`DiffStatus::Added`] and benign.

use clap_obs::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// How one benchmark event family turns into comparable cells.
struct CellSpec {
    /// JSONL event name carrying the cells.
    event: &'static str,
    /// Fields whose values identify a cell within the family.
    key_fields: &'static [&'static str],
    /// The lower-is-better measurement field.
    metric: &'static str,
}

/// The three bench trajectories the repo commits. `bench_serve` emits
/// many samples per (program, phase) cell — one per submission — so
/// samples are mean-aggregated before comparison.
const CELL_SPECS: [CellSpec; 3] = [
    CellSpec {
        event: "bench.explore.cell",
        key_fields: &["workload", "seed_budget", "workers"],
        metric: "millis",
    },
    CellSpec {
        event: "bench.vm.cell",
        key_fields: &["workload", "phase", "backend"],
        metric: "millis",
    },
    CellSpec {
        event: "bench.serve.cell",
        key_fields: &["program", "phase"],
        metric: "latency_us",
    },
];

/// Classification of one paired cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStatus {
    /// Within the noise margin either way.
    Ok,
    /// Faster than the margin allows for noise.
    Improved,
    /// Slower than the margin allows — a gate failure.
    Regressed,
    /// Only in the new artifact — benign.
    Added,
    /// Only in the old artifact — a gate failure (a benchmark that
    /// stopped running hides regressions).
    Removed,
}

impl DiffStatus {
    /// Lowercase label used in tables and JSONL events.
    pub fn label(self) -> &'static str {
        match self {
            DiffStatus::Ok => "ok",
            DiffStatus::Improved => "improved",
            DiffStatus::Regressed => "regressed",
            DiffStatus::Added => "added",
            DiffStatus::Removed => "removed",
        }
    }
}

/// One compared cell.
#[derive(Debug, Clone)]
pub struct CellDiff {
    /// Event family (`bench.vm.cell`, …).
    pub bench: String,
    /// `field=value` pairs identifying the cell, space-joined.
    pub key: String,
    /// Mean metric in the old artifact (`None` for [`DiffStatus::Added`]).
    pub old: Option<f64>,
    /// Mean metric in the new artifact (`None` for
    /// [`DiffStatus::Removed`]).
    pub new: Option<f64>,
    /// `100·(new−old)/old` when both sides exist.
    pub delta_pct: Option<f64>,
    /// The verdict under the configured margin.
    pub status: DiffStatus,
}

/// A full two-artifact comparison.
#[derive(Debug, Clone)]
pub struct BenchDiff {
    /// The noise margin (percent) the verdicts used.
    pub margin_pct: f64,
    /// Every paired cell, in (family, key) order.
    pub cells: Vec<CellDiff>,
}

impl BenchDiff {
    /// Cells slower than the margin.
    pub fn regressions(&self) -> usize {
        self.count(DiffStatus::Regressed)
    }

    /// Cells faster than the margin.
    pub fn improvements(&self) -> usize {
        self.count(DiffStatus::Improved)
    }

    /// Cells present only in the old artifact.
    pub fn removed(&self) -> usize {
        self.count(DiffStatus::Removed)
    }

    fn count(&self, status: DiffStatus) -> usize {
        self.cells.iter().filter(|c| c.status == status).count()
    }

    /// Whether `--check` should fail: any regressed or removed cell.
    pub fn has_failures(&self) -> bool {
        self.regressions() > 0 || self.removed() > 0
    }

    /// The per-cell delta table as GitHub-flavored markdown.
    pub fn render_markdown(&self, old_name: &str, new_name: &str) -> String {
        fn num(v: Option<f64>) -> String {
            v.map_or_else(|| "-".into(), |v| format!("{v:.3}"))
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Benchmark delta: `{old_name}` → `{new_name}` (noise margin ±{:.0}%)\n",
            self.margin_pct
        );
        let _ = writeln!(out, "| bench | cell | old | new | delta% | status |");
        let _ = writeln!(out, "|---|---|---:|---:|---:|---|");
        for c in &self.cells {
            let delta = c
                .delta_pct
                .map_or_else(|| "-".into(), |d| format!("{d:+.1}"));
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} |",
                c.bench,
                c.key,
                num(c.old),
                num(c.new),
                delta,
                c.status.label()
            );
        }
        let _ = writeln!(
            out,
            "\n{} cells: {} regressed, {} improved, {} removed.",
            self.cells.len(),
            self.regressions(),
            self.improvements(),
            self.removed()
        );
        out
    }

    /// Publishes the comparison through the [`clap_obs`] collector as one
    /// `bench.diff` summary event plus one `bench.diff.cell` per cell
    /// (both registered in the strict JSONL schema).
    pub fn emit_events(&self, old_name: &str, new_name: &str) {
        clap_obs::event(
            "bench.diff",
            &[
                ("old", old_name.to_owned()),
                ("new", new_name.to_owned()),
                ("margin_pct", format!("{:.1}", self.margin_pct)),
                ("cells", self.cells.len().to_string()),
                ("regressions", self.regressions().to_string()),
                ("improvements", self.improvements().to_string()),
            ],
        );
        for c in &self.cells {
            let num = |v: Option<f64>| v.map_or_else(|| "-".into(), |v| format!("{v:.3}"));
            clap_obs::event(
                "bench.diff.cell",
                &[
                    ("bench", c.bench.clone()),
                    ("key", c.key.clone()),
                    ("old", num(c.old)),
                    ("new", num(c.new)),
                    (
                        "delta_pct",
                        c.delta_pct
                            .map_or_else(|| "-".into(), |d| format!("{d:+.1}")),
                    ),
                    ("status", c.status.label().to_owned()),
                ],
            );
        }
    }
}

/// Extracts every benchmark cell from one JSONL artifact:
/// `(family, key) → samples`. Lines that are not cell events (meta,
/// other events, histograms) are skipped; a cell event with a
/// non-numeric metric is an error — that is a corrupt artifact, not
/// noise.
fn parse_cells(jsonl: &str) -> Result<BTreeMap<(String, String), Vec<f64>>, String> {
    let mut cells: BTreeMap<(String, String), Vec<f64>> = BTreeMap::new();
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if v.get("type").and_then(Value::as_str) != Some("event") {
            continue;
        }
        let Some(name) = v.get("name").and_then(Value::as_str) else {
            continue;
        };
        let Some(spec) = CELL_SPECS.iter().find(|s| s.event == name) else {
            continue;
        };
        let fields = v
            .get("fields")
            .ok_or_else(|| format!("line {}: {name} without fields", i + 1))?;
        let mut key = String::new();
        for f in spec.key_fields {
            let val = fields
                .get(f)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {}: {name} missing key field {f:?}", i + 1))?;
            if !key.is_empty() {
                key.push(' ');
            }
            let _ = write!(key, "{f}={val}");
        }
        let metric = fields
            .get(spec.metric)
            .and_then(Value::as_str)
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| {
                format!(
                    "line {}: {name} without numeric {:?} field",
                    i + 1,
                    spec.metric
                )
            })?;
        cells
            .entry((name.to_owned(), key))
            .or_default()
            .push(metric);
    }
    Ok(cells)
}

fn mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len().max(1) as f64
}

/// Compares two artifacts' cells under a noise margin (percent).
///
/// # Errors
///
/// Returns a message when either artifact fails to parse or carries a
/// malformed cell event.
pub fn diff(old_jsonl: &str, new_jsonl: &str, margin_pct: f64) -> Result<BenchDiff, String> {
    let old = parse_cells(old_jsonl).map_err(|e| format!("old artifact: {e}"))?;
    let new = parse_cells(new_jsonl).map_err(|e| format!("new artifact: {e}"))?;
    let mut keys: Vec<&(String, String)> = old.keys().chain(new.keys()).collect();
    keys.sort();
    keys.dedup();
    let mut cells = Vec::with_capacity(keys.len());
    for k in keys {
        let old_mean = old.get(k).map(|s| mean(s));
        let new_mean = new.get(k).map(|s| mean(s));
        let (delta_pct, status) = match (old_mean, new_mean) {
            (Some(o), Some(n)) => {
                let delta = if o == 0.0 { 0.0 } else { 100.0 * (n - o) / o };
                let status = if delta > margin_pct {
                    DiffStatus::Regressed
                } else if delta < -margin_pct {
                    DiffStatus::Improved
                } else {
                    DiffStatus::Ok
                };
                (Some(delta), status)
            }
            (Some(_), None) => (None, DiffStatus::Removed),
            (None, Some(_)) => (None, DiffStatus::Added),
            (None, None) => unreachable!("key came from one of the maps"),
        };
        cells.push(CellDiff {
            bench: k.0.clone(),
            key: k.1.clone(),
            old: old_mean,
            new: new_mean,
            delta_pct,
            status,
        });
    }
    Ok(BenchDiff { margin_pct, cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(cells: &[(&str, &str, f64)]) -> String {
        let mut out = String::new();
        for (name, keyval, metric) in cells {
            let spec = CELL_SPECS.iter().find(|s| s.event == *name).unwrap();
            let mut fields = String::new();
            for (f, v) in spec.key_fields.iter().zip(keyval.split(' ')) {
                let _ = write!(fields, "\"{f}\":\"{v}\",");
            }
            let _ = write!(fields, "\"{}\":\"{metric}\"", spec.metric);
            out.push_str(&format!(
                "{{\"type\":\"event\",\"name\":\"{name}\",\"tid\":0,\"ts_ns\":1,\"fields\":{{{fields}}}}}\n"
            ));
        }
        out
    }

    #[test]
    fn identical_artifacts_have_zero_regressions() {
        let a = artifact(&[
            ("bench.vm.cell", "sim_race sweep tree", 1.2),
            ("bench.vm.cell", "sim_race sweep bytecode", 1.0),
        ]);
        let d = diff(&a, &a, 25.0).unwrap();
        assert_eq!(d.cells.len(), 2);
        assert_eq!(d.regressions(), 0);
        assert!(!d.has_failures());
        assert!(d.cells.iter().all(|c| c.status == DiffStatus::Ok));
    }

    #[test]
    fn degraded_cells_regress_and_fail_the_gate() {
        let old = artifact(&[("bench.vm.cell", "sim_race sweep bytecode", 1.0)]);
        let new = artifact(&[("bench.vm.cell", "sim_race sweep bytecode", 2.0)]);
        let d = diff(&old, &new, 25.0).unwrap();
        assert_eq!(d.regressions(), 1);
        assert!(d.has_failures());
        assert_eq!(d.cells[0].delta_pct.unwrap().round(), 100.0);
        // The same delta the other way is an improvement, not a failure.
        let d = diff(&new, &old, 25.0).unwrap();
        assert_eq!(d.improvements(), 1);
        assert!(!d.has_failures());
    }

    #[test]
    fn within_margin_is_noise() {
        let old = artifact(&[("bench.explore.cell", "sim_race 400 2", 1.0)]);
        let new = artifact(&[("bench.explore.cell", "sim_race 400 2", 1.2)]);
        assert!(!diff(&old, &new, 25.0).unwrap().has_failures());
        assert!(diff(&old, &new, 10.0).unwrap().has_failures());
    }

    #[test]
    fn removed_cells_fail_added_cells_pass() {
        let old = artifact(&[
            ("bench.serve.cell", "peterson cold", 900.0),
            ("bench.serve.cell", "peterson warm", 80.0),
        ]);
        let new = artifact(&[("bench.serve.cell", "peterson cold", 900.0)]);
        let d = diff(&old, &new, 25.0).unwrap();
        assert_eq!(d.removed(), 1);
        assert!(d.has_failures());
        let d = diff(&new, &old, 25.0).unwrap();
        assert_eq!(d.removed(), 0);
        assert!(!d.has_failures());
        assert_eq!(d.count(DiffStatus::Added), 1);
    }

    #[test]
    fn serve_samples_are_mean_aggregated() {
        let old = artifact(&[
            ("bench.serve.cell", "peterson warm", 100.0),
            ("bench.serve.cell", "peterson warm", 300.0),
        ]);
        let new = artifact(&[("bench.serve.cell", "peterson warm", 200.0)]);
        let d = diff(&old, &new, 5.0).unwrap();
        assert_eq!(d.cells.len(), 1);
        assert_eq!(d.cells[0].status, DiffStatus::Ok);
        assert_eq!(d.cells[0].old, Some(200.0));
    }

    #[test]
    fn markdown_table_lists_every_cell() {
        let old = artifact(&[("bench.vm.cell", "sim_race sweep tree", 1.0)]);
        let new = artifact(&[("bench.vm.cell", "sim_race sweep tree", 3.0)]);
        let d = diff(&old, &new, 25.0).unwrap();
        let md = d.render_markdown("a.jsonl", "b.jsonl");
        assert!(md.contains("| bench | cell | old | new | delta% | status |"));
        assert!(md.contains("workload=sim_race phase=sweep backend=tree"));
        assert!(md.contains("regressed"));
        assert!(md.contains("1 regressed"));
    }

    #[test]
    fn corrupt_metric_is_an_error_not_noise() {
        let bad = "{\"type\":\"event\",\"name\":\"bench.vm.cell\",\"tid\":0,\"ts_ns\":1,\
                   \"fields\":{\"workload\":\"w\",\"phase\":\"p\",\"backend\":\"b\",\
                   \"millis\":\"fast\"}}\n";
        assert!(diff(bad, bad, 25.0).is_err());
    }
}
