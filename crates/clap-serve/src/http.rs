//! A deliberately minimal HTTP/1.1 layer over [`std::net::TcpStream`]:
//! just enough of the grammar for the reproduction service's wire
//! protocol — request line, headers, `Content-Length` bodies, and
//! `Connection: close` responses. No chunked encoding, no keep-alive,
//! no TLS; every exchange is one request, one response, one connection.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD: usize = 64 * 1024;
/// Upper bound on a request body (programs are small; 4 MiB is generous).
pub const MAX_BODY: usize = 4 * 1024 * 1024;
/// Per-direction socket timeout so a stalled peer cannot wedge the
/// accept loop forever.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// The wire-protocol header carrying the client-minted trace id.
pub const TRACE_HEADER: &str = "x-clap-trace";
/// Longest trace id accepted from the wire.
pub const MAX_TRACE_ID: usize = 64;

/// `Content-Type` for JSON bodies (every endpoint except `/metrics`).
pub const CT_JSON: &str = "application/json";
/// `Content-Type` for the Prometheus text exposition.
pub const CT_TEXT: &str = "text/plain; version=0.0.4";

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The request target (path only; the service ignores query strings).
    pub path: String,
    /// The decoded body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Sanitized [`TRACE_HEADER`] value, when the client sent one.
    pub trace: Option<String>,
}

/// Keeps only the characters a trace id may carry (alphanumerics and
/// dashes, capped at [`MAX_TRACE_ID`]), so a hostile header cannot smuggle
/// arbitrary bytes into sink files or response heads.
fn sanitize_trace_id(raw: &str) -> Option<String> {
    let id: String = raw
        .trim()
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '-')
        .take(MAX_TRACE_ID)
        .collect();
    (!id.is_empty()).then_some(id)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

/// Reads one request from `stream`.
///
/// # Errors
///
/// Returns an error for malformed syntax, over-long heads/bodies, or
/// socket failures.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;

    // Read until the blank line terminating the head.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err(bad("request head too large"));
        }
        match stream.read(&mut byte)? {
            0 => return Err(bad("connection closed mid-head")),
            _ => head.push(byte[0]),
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| bad("non-utf8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_owned();
    let path = parts.next().ok_or_else(|| bad("missing path"))?.to_owned();

    let mut content_length = 0usize;
    let mut trace = None;
    for line in lines {
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            } else if name.eq_ignore_ascii_case(TRACE_HEADER) {
                trace = sanitize_trace_id(value);
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(bad("request body too large"));
    }

    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        body,
        trace,
    })
}

/// Writes one `Connection: close` response. The request's trace id, when
/// present, is echoed back in [`TRACE_HEADER`] so clients can confirm the
/// id the server attributed their work to.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    content_type: &str,
    trace: Option<&str>,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let trace_line = match trace {
        Some(id) => format!("X-Clap-Trace: {id}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         {trace_line}Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads one response, returning `(status, body)`.
///
/// # Errors
///
/// Returns an error for malformed responses or socket failures.
pub fn read_response(stream: &mut TcpStream) -> io::Result<(u16, String)> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw).map_err(|_| bad("non-utf8 response"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("truncated response"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    Ok((status, body.to_owned()))
}
