//! The content-addressed result cache: fingerprint → rendered
//! [`clap_core::ReproductionReport`] JSON, with an append-only JSONL
//! journal under the cache directory so a restarted daemon comes back
//! warm.
//!
//! Journal format: one `{"key":"<16 hex>","report":{…}}` object per
//! line. Loading is *tolerant* — a corrupted or truncated line (the
//! daemon may have been killed mid-append) is skipped with a warning and
//! counted in `serve.cache.journal.skipped`; it never aborts startup.

use clap_core::ReproductionReport;
use clap_obs::json::{self, Value};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// In-memory cache plus optional on-disk journal.
#[derive(Debug)]
pub struct ResultCache {
    entries: HashMap<String, Arc<String>>,
    journal: Option<PathBuf>,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// An in-memory-only cache (no persistence).
    pub fn in_memory() -> Self {
        ResultCache {
            entries: HashMap::new(),
            journal: None,
            hits: 0,
            misses: 0,
        }
    }

    /// Opens a persistent cache under `dir`, creating the directory and
    /// replaying `journal.jsonl` if present. Valid lines become entries
    /// (`serve.cache.journal.loaded`); invalid ones are skipped with a
    /// warning (`serve.cache.journal.skipped`).
    ///
    /// # Errors
    ///
    /// Returns an error when the directory cannot be created or the
    /// journal cannot be read (a *missing* journal is not an error).
    pub fn open(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let journal = dir.join("journal.jsonl");
        let mut cache = ResultCache {
            entries: HashMap::new(),
            journal: Some(journal.clone()),
            hits: 0,
            misses: 0,
        };
        match File::open(&journal) {
            Ok(file) => cache.replay(BufReader::new(file))?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        clap_obs::gauge("serve.cache.entries", cache.entries.len() as i64);
        Ok(cache)
    }

    fn replay(&mut self, reader: impl BufRead) -> io::Result<()> {
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match parse_journal_line(&line) {
                Ok((key, report)) => {
                    self.entries.insert(key, Arc::new(report));
                    clap_obs::add("serve.cache.journal.loaded", 1);
                }
                Err(why) => {
                    eprintln!(
                        "clap-serve: skipping corrupt journal line {}: {why}",
                        lineno + 1
                    );
                    clap_obs::add("serve.cache.journal.skipped", 1);
                }
            }
        }
        Ok(())
    }

    /// Looks up a fingerprint. A hit is accounted (`serve.cache.hit`);
    /// a `None` is **not** automatically a miss — the caller records one
    /// with [`Self::record_miss`] only when the lookup leads to a fresh
    /// solve (a coalesced submission is neither a hit nor a miss).
    pub fn get(&mut self, key: &str) -> Option<Arc<String>> {
        let report = self.entries.get(key).map(Arc::clone);
        if report.is_some() {
            self.hits += 1;
            clap_obs::add("serve.cache.hit", 1);
        }
        report
    }

    /// Accounts one miss (`serve.cache.miss`): a submission that will
    /// run its own pipeline.
    pub fn record_miss(&mut self) {
        self.misses += 1;
        clap_obs::add("serve.cache.miss", 1);
    }

    /// Peeks without touching accounting (used by tests and `/metrics`).
    pub fn peek(&self, key: &str) -> Option<Arc<String>> {
        self.entries.get(key).cloned()
    }

    /// Inserts a finished report and appends it to the journal (best
    /// effort: a failed append keeps the in-memory entry and warns).
    pub fn insert(&mut self, key: &str, report: Arc<String>) {
        if let Some(path) = &self.journal {
            if let Err(e) = append_journal_line(path, key, &report) {
                eprintln!("clap-serve: journal append failed: {e}");
            }
        }
        self.entries.insert(key.to_owned(), report);
        clap_obs::gauge("serve.cache.entries", self.entries.len() as i64);
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` since this process opened the cache.
    pub fn accounting(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

fn parse_journal_line(line: &str) -> Result<(String, String), String> {
    let v = json::parse(line)?;
    let key = v
        .get("key")
        .and_then(Value::as_str)
        .ok_or("missing `key`")?
        .to_owned();
    let report = v.get("report").ok_or("missing `report`")?.render();
    // A syntactically-valid line whose report does not decode is just as
    // useless — validate before trusting it.
    ReproductionReport::from_json(&report).map_err(|e| format!("bad report: {e}"))?;
    Ok((key, report))
}

fn append_journal_line(path: &Path, key: &str, report: &str) -> io::Result<()> {
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(
        file,
        "{{\"key\":\"{}\",\"report\":{report}}}",
        json::escape(key)
    )?;
    file.flush()
}
