//! The reproduction daemon: a sequential HTTP accept loop in front of a
//! bounded job queue drained by a worker pool running
//! [`clap_core::Pipeline::reproduce`].
//!
//! Concurrency layout: handlers only touch the in-memory state (enqueue,
//! table lookups), so a single accept thread suffices — all heavy work
//! happens on the workers. One mutex (`Core`) guards the job table, the
//! queue, the in-flight coalescing map and the cache; `clap_obs` has its
//! own internal lock and is never called while *it* holds ours in
//! reverse, so the order is deadlock-free.
//!
//! Backpressure: a submission that misses the cache and finds the queue
//! at `queue_cap` is rejected with `503` (`serve.queue.rejected`) — the
//! daemon sheds load instead of buffering unboundedly. Shutdown is a
//! *graceful drain*: `POST /shutdown` stops the accept loop, workers
//! finish every queued job, then sinks are flushed.

use crate::cache::ResultCache;
use crate::http;
use crate::proto::{JobInfo, JobState, SubmitRequest};
use clap_core::Pipeline;
use clap_obs::json::Value;
use clap_obs::Observer;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads running pipelines (0 is clamped to 1).
    pub workers: usize,
    /// Queue capacity; submissions beyond it are shed with `503`.
    pub queue_cap: usize,
    /// Journal directory for the persistent cache (`None` = in-memory).
    pub cache_dir: Option<PathBuf>,
    /// Base sinks: each job flushes its own window to per-job files
    /// (`Observer::for_job`), and the daemon writes the combined sinks
    /// once on shutdown.
    pub observer: Observer,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_cap: 64,
            cache_dir: None,
            observer: Observer::none(),
        }
    }
}

/// One job's server-side record.
#[derive(Debug)]
struct Job {
    state: JobState,
    cached: bool,
    error: Option<String>,
    report: Option<Arc<String>>,
}

/// One queued unit of work.
struct WorkItem {
    job: u64,
    key: String,
    request: SubmitRequest,
    /// Client-minted trace id, threaded into the job's observability
    /// window and per-job sink files.
    trace: Option<String>,
    /// When the item entered the queue — the worker turns this into the
    /// `serve.queue.wait_us` histogram.
    enqueued: Instant,
}

/// Everything behind the one state mutex.
struct Core {
    next_job: u64,
    jobs: HashMap<u64, Job>,
    queue: VecDeque<WorkItem>,
    /// fingerprint → job ids waiting on the in-flight solve of that
    /// fingerprint (the running job itself is not listed).
    inflight: HashMap<String, Vec<u64>>,
    cache: ResultCache,
    shutdown: bool,
    /// Queue length at the moment shutdown was requested — the number of
    /// jobs the drain phase completes.
    drain_target: usize,
}

struct Shared {
    core: Mutex<Core>,
    cv: Condvar,
    observer: Observer,
    queue_cap: usize,
}

/// A running daemon.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    thread: JoinHandle<()>,
}

impl Server {
    /// Binds, loads the cache journal, spawns the worker pool and the
    /// accept loop. Also enables the global `clap_obs` collector (without
    /// resetting it) so `/metrics` and the cache counters work.
    ///
    /// # Errors
    ///
    /// Returns bind and cache-directory errors.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        clap_obs::enable();
        let cache = match &config.cache_dir {
            Some(dir) => ResultCache::open(dir)?,
            None => ResultCache::in_memory(),
        };
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            core: Mutex::new(Core {
                next_job: 1,
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                inflight: HashMap::new(),
                cache,
                shutdown: false,
                drain_target: 0,
            }),
            cv: Condvar::new(),
            observer: config.observer.clone(),
            queue_cap: config.queue_cap.max(1),
        });
        let workers = config.workers.max(1);
        let thread = thread::spawn(move || serve_loop(&listener, &shared, workers));
        Ok(Server { addr, thread })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the daemon has shut down and drained.
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

fn serve_loop(listener: &TcpListener, shared: &Arc<Shared>, workers: usize) {
    let pool: Vec<_> = (0..workers)
        .map(|_| {
            let shared = Arc::clone(shared);
            thread::spawn(move || worker_loop(&shared))
        })
        .collect();
    for stream in listener.incoming() {
        if let Ok(mut stream) = stream {
            handle_conn(shared, &mut stream);
        }
        if shared.core.lock().expect("serve core").shutdown {
            break;
        }
    }
    // Drain: wake every worker; each finishes the queue then exits.
    shared.cv.notify_all();
    for handle in pool {
        let _ = handle.join();
    }
    let drained = shared.core.lock().expect("serve core").drain_target;
    clap_obs::event("serve.shutdown", &[("drained", drained.to_string())]);
    if shared.observer.is_active() {
        if let Err(e) = shared.observer.flush() {
            eprintln!("clap-serve: final sink flush failed: {e}");
        }
    }
}

fn job_info(id: u64, job: &Job) -> JobInfo {
    JobInfo {
        job: id,
        state: job.state,
        cached: job.cached,
        error: job.error.clone(),
    }
}

fn new_job(core: &mut Core, job: Job) -> u64 {
    let id = core.next_job;
    core.next_job += 1;
    core.jobs.insert(id, job);
    id
}

enum SubmitOutcome {
    Accepted(JobInfo),
    BadProgram(String),
    QueueFull,
}

fn submit(shared: &Shared, request: SubmitRequest, trace: Option<String>) -> SubmitOutcome {
    // Canonicalize + hash outside the lock: it parses the program.
    let key = match request.fingerprint() {
        Ok(key) => key,
        Err(e) => return SubmitOutcome::BadProgram(e.to_string()),
    };
    let mut core = shared.core.lock().expect("serve core");
    if core.shutdown {
        return SubmitOutcome::QueueFull;
    }
    clap_obs::add("serve.jobs.submitted", 1);
    if let Some(report) = core.cache.get(&key) {
        // Cache hit: the job is born finished.
        let id = new_job(
            &mut core,
            Job {
                state: JobState::Done,
                cached: true,
                error: None,
                report: Some(report),
            },
        );
        let info = job_info(id, &core.jobs[&id]);
        return SubmitOutcome::Accepted(info);
    }
    if core.inflight.contains_key(&key) {
        // An identical submission is already being solved: coalesce.
        let id = core.next_job;
        core.next_job += 1;
        core.inflight
            .get_mut(&key)
            .expect("inflight entry")
            .push(id);
        core.jobs.insert(
            id,
            Job {
                state: JobState::Queued,
                cached: false,
                error: None,
                report: None,
            },
        );
        clap_obs::add("serve.cache.coalesced", 1);
        let info = job_info(id, &core.jobs[&id]);
        return SubmitOutcome::Accepted(info);
    }
    if core.queue.len() >= shared.queue_cap {
        clap_obs::add("serve.queue.rejected", 1);
        return SubmitOutcome::QueueFull;
    }
    core.cache.record_miss();
    let id = new_job(
        &mut core,
        Job {
            state: JobState::Queued,
            cached: false,
            error: None,
            report: None,
        },
    );
    core.inflight.insert(key.clone(), Vec::new());
    core.queue.push_back(WorkItem {
        job: id,
        key,
        request,
        trace,
        enqueued: Instant::now(),
    });
    clap_obs::gauge("serve.queue.depth", core.queue.len() as i64);
    let info = job_info(id, &core.jobs[&id]);
    drop(core);
    shared.cv.notify_one();
    SubmitOutcome::Accepted(info)
}

fn run_job(request: &SubmitRequest) -> Result<String, String> {
    let pipeline = Pipeline::from_source(&request.source).map_err(|e| e.to_string())?;
    let report = pipeline
        .reproduce(&request.pipeline_config())
        .map_err(|e| e.to_string())?;
    Ok(report.to_json())
}

fn finish(core: &mut Core, id: u64, cached: bool, report: Arc<String>, wall_us: u64) {
    if let Some(job) = core.jobs.get_mut(&id) {
        job.state = JobState::Done;
        job.cached = cached;
        job.report = Some(report);
    }
    clap_obs::add("serve.jobs.completed", 1);
    clap_obs::observe("serve.job.wall_us", wall_us);
    clap_obs::event(
        "serve.job.done",
        &[
            ("job", id.to_string()),
            ("cached", cached.to_string()),
            ("wall_us", wall_us.to_string()),
        ],
    );
}

fn fail(core: &mut Core, id: u64, error: &str) {
    if let Some(job) = core.jobs.get_mut(&id) {
        job.state = JobState::Failed;
        job.error = Some(error.to_owned());
    }
    clap_obs::add("serve.jobs.failed", 1);
    clap_obs::event(
        "serve.job.failed",
        &[("job", id.to_string()), ("error", error.to_owned())],
    );
}

fn worker_loop(shared: &Shared) {
    loop {
        let item = {
            let mut core = shared.core.lock().expect("serve core");
            loop {
                if let Some(item) = core.queue.pop_front() {
                    clap_obs::gauge("serve.queue.depth", core.queue.len() as i64);
                    break Some(item);
                }
                if core.shutdown {
                    break None;
                }
                core = shared.cv.wait(core).expect("serve core");
            }
        };
        let Some(item) = item else { return };
        if let Some(job) = shared
            .core
            .lock()
            .expect("serve core")
            .jobs
            .get_mut(&item.job)
        {
            job.state = JobState::Running;
        }
        // Mark the global stream so this job's sinks get only its window.
        let obs_mark = clap_obs::mark();
        let queue_wait_us = item.enqueued.elapsed().as_micros() as u64;
        clap_obs::observe("serve.queue.wait_us", queue_wait_us);
        // Inside the window (after the mark), so the per-job sink carries
        // the id that links this job back to the client's trace.
        clap_obs::event(
            "serve.job.trace",
            &[
                ("job", item.job.to_string()),
                (
                    "trace_id",
                    item.trace.clone().unwrap_or_else(|| "-".to_owned()),
                ),
                ("queue_wait_us", queue_wait_us.to_string()),
            ],
        );
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| run_job(&item.request)))
            .unwrap_or_else(|_| Err("pipeline panicked".to_owned()));
        let wall_us = start.elapsed().as_micros() as u64;
        if shared.observer.is_active() {
            let mut job_obs = shared.observer.for_job(item.job);
            if let Some(id) = &item.trace {
                job_obs = job_obs.with_trace_id(id.clone());
            }
            if let Err(e) = job_obs.flush_since(&obs_mark) {
                eprintln!("clap-serve: job {} sink flush failed: {e}", item.job);
            }
        }
        let mut core = shared.core.lock().expect("serve core");
        let waiters = core.inflight.remove(&item.key).unwrap_or_default();
        match result {
            Ok(report) => {
                let report = Arc::new(report);
                core.cache.insert(&item.key, Arc::clone(&report));
                finish(&mut core, item.job, false, Arc::clone(&report), wall_us);
                for waiter in waiters {
                    // Coalesced jobs ride the runner's solve: cached.
                    finish(&mut core, waiter, true, Arc::clone(&report), 0);
                }
            }
            Err(error) => {
                fail(&mut core, item.job, &error);
                for waiter in waiters {
                    fail(&mut core, waiter, &error);
                }
            }
        }
    }
}

/// The current snapshot with the derived cache-hit-ratio gauge mixed in
/// (hits as a percentage of hit+miss lookups, absent until the first
/// lookup).
fn metrics_snapshot() -> clap_obs::Snapshot {
    let mut snap = clap_obs::snapshot();
    let hit = snap.counters.get("serve.cache.hit").copied().unwrap_or(0);
    let miss = snap.counters.get("serve.cache.miss").copied().unwrap_or(0);
    if let Some(ratio) = (hit * 100).checked_div(hit + miss) {
        snap.gauges
            .insert("serve.cache.hit_ratio_pct".to_owned(), ratio as i64);
    }
    snap
}

fn metrics_prometheus() -> String {
    let mut buf = Vec::new();
    clap_obs::sink::write_prometheus(&metrics_snapshot(), &mut buf)
        .expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("prometheus exposition is utf-8")
}

fn metrics_json() -> String {
    let snap = metrics_snapshot();
    let counters = snap
        .counters
        .iter()
        .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
        .collect();
    let gauges = snap
        .gauges
        .iter()
        .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
        .collect();
    let hists = snap
        .hists
        .iter()
        .map(|(k, h)| {
            (
                k.clone(),
                Value::Obj(vec![
                    ("count".to_owned(), Value::Num(h.count() as f64)),
                    ("p50".to_owned(), Value::Num(h.p50() as f64)),
                    ("p95".to_owned(), Value::Num(h.p95() as f64)),
                    ("p99".to_owned(), Value::Num(h.p99() as f64)),
                ]),
            )
        })
        .collect();
    Value::Obj(vec![
        ("counters".to_owned(), Value::Obj(counters)),
        ("gauges".to_owned(), Value::Obj(gauges)),
        ("hists".to_owned(), Value::Obj(hists)),
    ])
    .render()
}

/// The per-endpoint latency histogram a request lands in. Static strings,
/// pre-registered in `clap_obs::sink::KNOWN_STRICT_METRICS`.
fn latency_metric(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("POST", "/submit") => "serve.http.latency_us.submit",
        ("GET", "/metrics" | "/metrics.json") => "serve.http.latency_us.metrics",
        ("POST", "/shutdown") => "serve.http.latency_us.shutdown",
        ("GET", p) if p.starts_with("/status/") => "serve.http.latency_us.status",
        ("GET", p) if p.starts_with("/report/") => "serve.http.latency_us.report",
        _ => "serve.http.latency_us.other",
    }
}

fn error_body(message: &str) -> String {
    Value::Obj(vec![("error".to_owned(), Value::Str(message.to_owned()))]).render()
}

fn handle_conn(shared: &Shared, stream: &mut TcpStream) {
    clap_obs::add("serve.http.requests", 1);
    let start = Instant::now();
    let request = match http::read_request(stream) {
        Ok(request) => request,
        Err(e) => {
            clap_obs::add("serve.http.errors", 1);
            let _ = http::write_response(
                stream,
                400,
                &error_body(&e.to_string()),
                http::CT_JSON,
                None,
            );
            clap_obs::observe(
                "serve.http.latency_us.other",
                start.elapsed().as_micros() as u64,
            );
            return;
        }
    };
    let (status, body, content_type) = route(shared, &request);
    if status >= 400 {
        clap_obs::add("serve.http.errors", 1);
    }
    let _ = http::write_response(
        stream,
        status,
        &body,
        content_type,
        request.trace.as_deref(),
    );
    clap_obs::observe(
        latency_metric(&request.method, &request.path),
        start.elapsed().as_micros() as u64,
    );
}

fn route(shared: &Shared, request: &http::Request) -> (u16, String, &'static str) {
    if request.method == "GET" && request.path == "/metrics" {
        // The scrape endpoint: Prometheus text, not JSON.
        return (200, metrics_prometheus(), http::CT_TEXT);
    }
    let (status, body) = route_json(shared, request);
    (status, body, http::CT_JSON)
}

fn route_json(shared: &Shared, request: &http::Request) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/submit") => {
            let body = match std::str::from_utf8(&request.body) {
                Ok(body) => body,
                Err(_) => return (400, error_body("non-utf8 body")),
            };
            let submit_request = match SubmitRequest::from_json(body) {
                Ok(r) => r,
                Err(e) => return (400, error_body(&e)),
            };
            match submit(shared, submit_request, request.trace.clone()) {
                SubmitOutcome::Accepted(info) => (200, info.to_json()),
                SubmitOutcome::BadProgram(e) => (400, error_body(&e)),
                SubmitOutcome::QueueFull => (503, error_body("queue full")),
            }
        }
        ("GET", "/metrics.json") => (200, metrics_json()),
        ("POST", "/shutdown") => {
            let mut core = shared.core.lock().expect("serve core");
            if !core.shutdown {
                core.shutdown = true;
                core.drain_target = core.queue.len();
            }
            let queued = core.queue.len();
            drop(core);
            shared.cv.notify_all();
            (
                200,
                Value::Obj(vec![
                    ("draining".to_owned(), Value::Bool(true)),
                    ("queued".to_owned(), Value::Num(queued as f64)),
                ])
                .render(),
            )
        }
        ("GET", path) if path.starts_with("/status/") => {
            match path["/status/".len()..].parse::<u64>() {
                Ok(id) => {
                    let core = shared.core.lock().expect("serve core");
                    match core.jobs.get(&id) {
                        Some(job) => (200, job_info(id, job).to_json()),
                        None => (404, error_body("no such job")),
                    }
                }
                Err(_) => (400, error_body("bad job id")),
            }
        }
        ("GET", path) if path.starts_with("/report/") => {
            match path["/report/".len()..].parse::<u64>() {
                Ok(id) => {
                    let core = shared.core.lock().expect("serve core");
                    match core.jobs.get(&id) {
                        Some(job) => match (&job.state, &job.report) {
                            (JobState::Done, Some(report)) => (200, report.as_ref().clone()),
                            (JobState::Failed, _) => (
                                409,
                                error_body(job.error.as_deref().unwrap_or("job failed")),
                            ),
                            _ => (409, error_body("job not finished")),
                        },
                        None => (404, error_body("no such job")),
                    }
                }
                Err(_) => (400, error_body("bad job id")),
            }
        }
        ("GET" | "POST", _) => (404, error_body("no such endpoint")),
        _ => (405, error_body("method not allowed")),
    }
}
