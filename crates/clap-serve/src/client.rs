//! A blocking client for the reproduction service, used by the CLI
//! subcommands (`submit`/`status`/`fetch`), the `bench_serve` load
//! generator and the integration tests. One TCP connection per request
//! (the server speaks `Connection: close`).

use crate::http;
use crate::proto::{JobInfo, JobState, SubmitRequest};
use clap_obs::json::{self, Value};
use std::fmt;
use std::io;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server answered with an error status.
    Http {
        /// HTTP status code.
        status: u16,
        /// The server's error message (decoded from the JSON body when
        /// possible, raw otherwise).
        message: String,
    },
    /// The response body did not decode.
    Proto(String),
    /// [`Client::wait`] ran out of time.
    Timeout,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Http { status, message } => write!(f, "http {status}: {message}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Timeout => write!(f, "timed out waiting for the job"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A handle on one reproduction service.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    trace: Option<String>,
}

impl Client {
    /// A client for the daemon at `addr` (e.g. `127.0.0.1:7117`).
    pub fn new(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            trace: None,
        }
    }

    /// Attaches a trace id (see `proto::mint_trace_id`): every request
    /// this client sends carries it in the `X-Clap-Trace` header, and the
    /// server threads it into the job's observability window.
    #[must_use]
    pub fn with_trace_id(mut self, id: impl Into<String>) -> Self {
        self.trace = Some(id.into());
        self
    }

    /// The trace id attached to this client, if any.
    pub fn trace_id(&self) -> Option<&str> {
        self.trace.as_deref()
    }

    /// Connects with retry until `deadline` elapses — the "wait for the
    /// daemon to come up" helper that saves callers (CI, tests) a ping
    /// loop.
    ///
    /// # Errors
    ///
    /// Returns the last connection error when the deadline passes.
    pub fn connect_retry(addr: impl Into<String>, deadline: Duration) -> io::Result<Client> {
        let client = Client::new(addr);
        let start = Instant::now();
        loop {
            match TcpStream::connect(&client.addr) {
                Ok(_) => return Ok(client),
                Err(e) if start.elapsed() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    fn request(&self, method: &str, path: &str, body: Option<&str>) -> Result<String, ClientError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        let body = body.unwrap_or("");
        let trace_line = match &self.trace {
            Some(id) => format!("X-Clap-Trace: {id}\r\n"),
            None => String::new(),
        };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             {trace_line}Content-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        use std::io::Write as _;
        stream.set_write_timeout(Some(http::IO_TIMEOUT))?;
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        let (status, body) = http::read_response(&mut stream)?;
        if status == 200 {
            Ok(body)
        } else {
            let message = json::parse(&body)
                .ok()
                .and_then(|v| v.get("error").and_then(Value::as_str).map(str::to_owned))
                .unwrap_or(body);
            Err(ClientError::Http { status, message })
        }
    }

    /// Submits a reproduction request, returning the job envelope.
    ///
    /// # Errors
    ///
    /// `503` (queue full / draining) and `400` (bad program) surface as
    /// [`ClientError::Http`].
    pub fn submit(&self, request: &SubmitRequest) -> Result<JobInfo, ClientError> {
        let body = self.request("POST", "/submit", Some(&request.to_json()))?;
        JobInfo::from_json(&body).map_err(ClientError::Proto)
    }

    /// Polls one job's status.
    ///
    /// # Errors
    ///
    /// `404` for unknown jobs.
    pub fn status(&self, job: u64) -> Result<JobInfo, ClientError> {
        let body = self.request("GET", &format!("/status/{job}"), None)?;
        JobInfo::from_json(&body).map_err(ClientError::Proto)
    }

    /// Fetches a finished job's report JSON (decode with
    /// `clap_core::ReproductionReport::from_json`).
    ///
    /// # Errors
    ///
    /// `409` while the job is still queued/running or when it failed.
    pub fn fetch(&self, job: u64) -> Result<String, ClientError> {
        self.request("GET", &format!("/report/{job}"), None)
    }

    /// Polls until the job is done or failed, up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when the deadline passes first.
    pub fn wait(&self, job: u64, timeout: Duration) -> Result<JobInfo, ClientError> {
        let start = Instant::now();
        loop {
            let info = self.status(job)?;
            match info.state {
                JobState::Done | JobState::Failed => return Ok(info),
                _ if start.elapsed() >= timeout => return Err(ClientError::Timeout),
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Scrapes `/metrics` (Prometheus text exposition: per-endpoint
    /// latency histograms with quantiles, queue depth, cache hit ratio,
    /// shed count).
    ///
    /// # Errors
    ///
    /// Socket-level failures only.
    pub fn metrics(&self) -> Result<String, ClientError> {
        self.request("GET", "/metrics", None)
    }

    /// Scrapes `/metrics.json` (the same data as a JSON document, for
    /// tooling that predates the Prometheus exposition).
    ///
    /// # Errors
    ///
    /// Socket-level failures only.
    pub fn metrics_json(&self) -> Result<String, ClientError> {
        self.request("GET", "/metrics.json", None)
    }

    /// Requests a graceful drain-and-stop.
    ///
    /// # Errors
    ///
    /// Socket-level failures only.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        self.request("POST", "/shutdown", Some(""))?;
        Ok(())
    }
}
