//! The CLAP reproduction **service**: many recorded failures stream in,
//! a pool of workers grinds through them offline, and identical
//! submissions are never solved twice.
//!
//! CLAP's recording half is cheap enough to leave on in production; the
//! expensive half — symbolic execution and constraint solving — runs
//! offline. This crate gives that offline half the shape the deployment
//! story implies: a daemon with
//!
//! - a minimal hand-rolled HTTP/1.1 wire protocol ([`http`]):
//!   `POST /submit`, `GET /status/<id>`, `GET /report/<id>`,
//!   `GET /metrics` (Prometheus text; `/metrics.json` for the JSON
//!   document), `POST /shutdown` — every request may carry a
//!   client-minted [`mint_trace_id`] in the `X-Clap-Trace` header, which
//!   the server threads into the job's per-job sinks;
//! - a bounded job queue and worker pool with backpressure (`503` when
//!   the queue is full) and graceful drain ([`server`]);
//! - a **content-addressed result cache** ([`cache`]) keyed by the
//!   fingerprint of (canonicalized source, memory model, solver config),
//!   with in-flight coalescing — N identical concurrent submissions cost
//!   one solve — and a JSONL journal that survives restarts;
//! - per-job observability: each job flushes its own window of the
//!   global `clap_obs` stream to per-job sink files.
//!
//! # Example
//!
//! ```
//! use clap_serve::{Client, ServeConfig, Server, SubmitRequest};
//! use std::time::Duration;
//!
//! let _guard = clap_obs::test_lock();
//! let server = Server::start(ServeConfig::default())?;
//! let client = Client::new(server.addr().to_string());
//! let program = "global int x = 0;
//!     fn w() { let v: int = x; yield; x = v + 1; }
//!     fn main() { let a: thread = fork w(); let b: thread = fork w();
//!                 join a; join b; assert(x == 2, \"lost update\"); }";
//! let job = client.submit(&SubmitRequest::new(program))?;
//! let done = client.wait(job.job, Duration::from_secs(60))?;
//! let report = clap_core::ReproductionReport::from_json(&client.fetch(done.job)?)?;
//! assert!(report.reproduced);
//! client.shutdown()?;
//! server.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
pub mod client;
pub mod http;
pub mod proto;
pub mod server;

pub use cache::ResultCache;
pub use client::{Client, ClientError};
pub use proto::{mint_trace_id, parse_model, JobInfo, JobState, SolverKind, SubmitRequest};
pub use server::{ServeConfig, Server};
