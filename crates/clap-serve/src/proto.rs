//! Wire types for the reproduction service: the submit request, the job
//! info envelope, and the **content-address fingerprint** that keys the
//! result cache.
//!
//! The fingerprint hashes the *canonicalized* program source (via
//! [`clap_ir::canonicalize`], which erases formatting-only differences)
//! together with every reproduction-relevant knob, so two submissions
//! that differ only in whitespace or comments share one cache entry,
//! while a changed memory model or solver choice never does.

use clap_core::{AutoConfig, PipelineConfig, SolverChoice};
use clap_obs::json::{self, Value};
use clap_parallel::ParallelConfig;
use clap_solver::SolverConfig;
use clap_vm::MemModel;
use std::fmt;

/// Which offline solver a submission requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// The adaptive portfolio (default — fast on few-preemption bugs,
    /// complete on the rest).
    #[default]
    Auto,
    /// The sequential DPLL(T)-style search.
    Sequential,
    /// The §4.3 parallel generate-and-validate engine.
    Parallel,
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SolverKind::Auto => "auto",
            SolverKind::Sequential => "sequential",
            SolverKind::Parallel => "parallel",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for SolverKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(SolverKind::Auto),
            "sequential" => Ok(SolverKind::Sequential),
            "parallel" => Ok(SolverKind::Parallel),
            other => Err(format!("unknown solver `{other}`")),
        }
    }
}

fn model_str(model: MemModel) -> &'static str {
    match model {
        MemModel::Sc => "SC",
        MemModel::Tso => "TSO",
        MemModel::Pso => "PSO",
        MemModel::C11 => "C11",
    }
}

/// Parses a memory-model name (case-insensitive).
///
/// # Errors
///
/// Returns a message for unknown names.
pub fn parse_model(s: &str) -> Result<MemModel, String> {
    match s.to_ascii_lowercase().as_str() {
        "sc" => Ok(MemModel::Sc),
        "tso" => Ok(MemModel::Tso),
        "pso" => Ok(MemModel::Pso),
        "c11" => Ok(MemModel::C11),
        other => Err(format!("unknown memory model `{other}`")),
    }
}

/// One reproduction submission: the program plus every knob that affects
/// the result.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// DSL source of the program to reproduce.
    pub source: String,
    /// Memory model of the recorded execution.
    pub model: MemModel,
    /// Offline solver choice.
    pub solver: SolverKind,
    /// Exploration seed budget override (`None` = pipeline default).
    pub seed_budget: Option<u64>,
    /// Record the §6.4 global synchronization order.
    pub sync_order: bool,
}

impl SubmitRequest {
    /// A submission with default knobs (SC, auto solver).
    pub fn new(source: impl Into<String>) -> Self {
        SubmitRequest {
            source: source.into(),
            model: MemModel::Sc,
            solver: SolverKind::default(),
            seed_budget: None,
            sync_order: false,
        }
    }

    /// Encodes the submission as JSON.
    pub fn to_json(&self) -> String {
        Value::Obj(vec![
            ("source".to_owned(), Value::Str(self.source.clone())),
            (
                "model".to_owned(),
                Value::Str(model_str(self.model).to_owned()),
            ),
            ("solver".to_owned(), Value::Str(self.solver.to_string())),
            (
                "seed_budget".to_owned(),
                match self.seed_budget {
                    Some(b) => Value::Num(b as f64),
                    None => Value::Null,
                },
            ),
            ("sync_order".to_owned(), Value::Bool(self.sync_order)),
        ])
        .render()
    }

    /// Decodes a submission from JSON.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let source = v
            .get("source")
            .and_then(Value::as_str)
            .ok_or("missing `source`")?
            .to_owned();
        let model = match v.get("model") {
            None | Some(Value::Null) => MemModel::Sc,
            Some(m) => parse_model(m.as_str().ok_or("`model` is not a string")?)?,
        };
        let solver = match v.get("solver") {
            None | Some(Value::Null) => SolverKind::default(),
            Some(s) => s.as_str().ok_or("`solver` is not a string")?.parse()?,
        };
        let seed_budget = match v.get("seed_budget") {
            None | Some(Value::Null) => None,
            Some(Value::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            Some(_) => return Err("`seed_budget` is not an unsigned integer".to_owned()),
        };
        let sync_order = match v.get("sync_order") {
            None | Some(Value::Null) => false,
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err("`sync_order` is not a bool".to_owned()),
        };
        Ok(SubmitRequest {
            source,
            model,
            solver,
            seed_budget,
            sync_order,
        })
    }

    /// The content-address of this submission: an FNV-1a 64-bit hash (as
    /// 16 hex digits) of the canonicalized source plus every
    /// result-affecting knob. Formatting-only source differences share a
    /// fingerprint; any semantic or configuration difference does not.
    ///
    /// # Errors
    ///
    /// Returns the parse error when the source is not syntactically valid.
    pub fn fingerprint(&self) -> Result<String, clap_ir::Error> {
        let canon = clap_ir::canonicalize(&self.source)?;
        let budget = match self.seed_budget {
            Some(b) => b.to_string(),
            None => "default".to_owned(),
        };
        let material = format!(
            "{canon}\u{0}model={};solver={};seed_budget={budget};sync_order={}",
            model_str(self.model),
            self.solver,
            self.sync_order,
        );
        Ok(format!("{:016x}", fnv1a(material.as_bytes())))
    }

    /// Lowers the submission to a pipeline configuration.
    pub fn pipeline_config(&self) -> PipelineConfig {
        let mut config = PipelineConfig::new(self.model);
        config.solver = match self.solver {
            SolverKind::Auto => SolverChoice::Auto(AutoConfig::default()),
            SolverKind::Sequential => SolverChoice::Sequential(SolverConfig::default()),
            SolverKind::Parallel => SolverChoice::Parallel(ParallelConfig::default()),
        };
        if let Some(budget) = self.seed_budget {
            config.seed_budget = budget;
        }
        config.record_sync_order = self.sync_order;
        config
    }
}

/// Mints a fresh 16-hex-digit trace id on the client side, unique across
/// processes and calls (wall clock × pid × per-process counter, mixed
/// through FNV-1a). Carried in the `X-Clap-Trace` wire header so one id
/// stitches the client span, the queue wait, and the worker's pipeline
/// phases into a single trace.
pub fn mint_trace_id() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let material = format!("{now}:{}:{seq}", std::process::id());
    format!("{:016x}", fnv1a(material.as_bytes()))
}

/// FNV-1a, 64-bit: the classic small fast hash — deterministic across
/// runs and platforms, which `DefaultHasher` does not guarantee.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue (or for an identical in-flight solve).
    Queued,
    /// A worker is running the pipeline.
    Running,
    /// The report is ready.
    Done,
    /// The pipeline failed.
    Failed,
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for JobState {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "done" => Ok(JobState::Done),
            "failed" => Ok(JobState::Failed),
            other => Err(format!("unknown job state `{other}`")),
        }
    }
}

/// The job envelope returned by `/submit` and `/status/<id>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobInfo {
    /// Server-assigned job id.
    pub job: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// `true` when the report came from the cache (or an in-flight
    /// coalesced solve) instead of a dedicated pipeline run.
    pub cached: bool,
    /// The failure description, for [`JobState::Failed`].
    pub error: Option<String>,
}

impl JobInfo {
    /// Encodes the envelope as JSON.
    pub fn to_json(&self) -> String {
        Value::Obj(vec![
            ("job".to_owned(), Value::Num(self.job as f64)),
            ("state".to_owned(), Value::Str(self.state.to_string())),
            ("cached".to_owned(), Value::Bool(self.cached)),
            (
                "error".to_owned(),
                match &self.error {
                    Some(e) => Value::Str(e.clone()),
                    None => Value::Null,
                },
            ),
        ])
        .render()
    }

    /// Decodes the envelope from JSON.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let job = v
            .get("job")
            .and_then(Value::as_num)
            .ok_or("missing `job`")? as u64;
        let state = v
            .get("state")
            .and_then(Value::as_str)
            .ok_or("missing `state`")?
            .parse()?;
        let cached = matches!(v.get("cached"), Some(Value::Bool(true)));
        let error = v.get("error").and_then(Value::as_str).map(str::to_owned);
        Ok(JobInfo {
            job,
            state,
            cached,
            error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = "global int x = 0;
         fn w() { let v: int = x; yield; x = v + 1; }
         fn main() { let a: thread = fork w(); let b: thread = fork w();
                     join a; join b; assert(x == 2, \"lost\"); }";

    #[test]
    fn submit_round_trips_through_json() {
        let mut req = SubmitRequest::new(PROGRAM);
        req.model = MemModel::Tso;
        req.solver = SolverKind::Parallel;
        req.seed_budget = Some(123);
        req.sync_order = true;
        let decoded = SubmitRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn fingerprint_ignores_formatting_but_not_knobs() {
        let a = SubmitRequest::new(PROGRAM);
        // Same program, wildly different whitespace.
        let b = SubmitRequest::new(PROGRAM.replace("\n", "  \n\n").replace("; ", ";\n"));
        assert_eq!(a.fingerprint().unwrap(), b.fingerprint().unwrap());

        let mut c = a.clone();
        c.model = MemModel::Tso;
        assert_ne!(a.fingerprint().unwrap(), c.fingerprint().unwrap());
        let mut d = a.clone();
        d.solver = SolverKind::Sequential;
        assert_ne!(a.fingerprint().unwrap(), d.fingerprint().unwrap());
        let mut e = a.clone();
        e.seed_budget = Some(7);
        assert_ne!(a.fingerprint().unwrap(), e.fingerprint().unwrap());
    }

    #[test]
    fn fingerprint_rejects_garbage_source() {
        assert!(SubmitRequest::new("not a program").fingerprint().is_err());
    }

    #[test]
    fn trace_ids_are_distinct_hex() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_ne!(a, b, "consecutive mints must differ");
        for id in [&a, &b] {
            assert_eq!(id.len(), 16);
            assert!(id.chars().all(|c| c.is_ascii_hexdigit()), "{id}");
        }
    }

    #[test]
    fn job_info_round_trips() {
        let info = JobInfo {
            job: 42,
            state: JobState::Failed,
            cached: false,
            error: Some("solver budget exhausted".to_owned()),
        };
        assert_eq!(JobInfo::from_json(&info.to_json()).unwrap(), info);
        let ok = JobInfo {
            job: 7,
            state: JobState::Done,
            cached: true,
            error: None,
        };
        assert_eq!(JobInfo::from_json(&ok.to_json()).unwrap(), ok);
    }
}
