//! End-to-end tests of the reproduction service: wire protocol, cache
//! hit/miss accounting, in-flight coalescing, journal persistence across
//! restarts, corrupt-journal tolerance, per-job sinks, and backpressure.
//!
//! Every test uses the process-global `clap_obs` collector, so each one
//! holds `clap_obs::test_lock()` for its whole body and resets the
//! collector itself.

use clap_core::ReproductionReport;
use clap_serve::{Client, ClientError, JobState, ResultCache, ServeConfig, Server, SubmitRequest};
use std::path::PathBuf;
use std::time::Duration;

/// A two-thread lost update: fails under some interleaving, found within
/// a handful of exploration seeds — the fast end-to-end workload.
const LOST_UPDATE: &str = "global int x = 0;
     fn w() { let v: int = x; yield; x = v + 1; }
     fn main() { let a: thread = fork w(); let b: thread = fork w();
                 join a; join b; assert(x == 2, \"lost\"); }";

/// A program whose assert never fails: exploration runs its whole seed
/// budget and then the job fails with `NoFailureFound` — the knob that
/// makes a *slow* job with a precisely controllable duration.
fn no_failure_program(tag: u32) -> String {
    format!(
        "global int x = 0;
         fn main() {{ assert(x == 0, \"stall{tag}\"); }}"
    )
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clap_serve_test_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(config: ServeConfig) -> (Server, Client) {
    let server = Server::start(config).expect("server start");
    let client = Client::new(server.addr().to_string());
    (server, client)
}

fn counter(name: &str) -> u64 {
    clap_obs::snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

fn solve_spans() -> usize {
    clap_obs::snapshot()
        .spans
        .iter()
        .filter(|s| s.name == "solve")
        .count()
}

#[test]
fn submit_wait_fetch_round_trip() {
    let _guard = clap_obs::test_lock();
    clap_obs::reset();
    let (server, client) = start(ServeConfig::default());

    let job = client.submit(&SubmitRequest::new(LOST_UPDATE)).unwrap();
    assert!(!job.cached);
    let done = client.wait(job.job, Duration::from_secs(120)).unwrap();
    assert_eq!(done.state, JobState::Done);
    assert!(!done.cached);

    let report = ReproductionReport::from_json(&client.fetch(done.job).unwrap()).unwrap();
    assert!(report.reproduced);
    assert_eq!(report.threads, 3);

    client.shutdown().unwrap();
    server.join();
}

#[test]
fn second_identical_submission_is_a_cache_hit_without_a_solve() {
    let _guard = clap_obs::test_lock();
    clap_obs::reset();
    let (server, client) = start(ServeConfig::default());

    let first = client.submit(&SubmitRequest::new(LOST_UPDATE)).unwrap();
    let first = client.wait(first.job, Duration::from_secs(120)).unwrap();
    let first_report = client.fetch(first.job).unwrap();

    let hits_before = counter("serve.cache.hit");
    let spans_before = solve_spans();

    // Same program, different formatting: the canonical fingerprint
    // must collapse them onto one cache entry.
    let reformatted = LOST_UPDATE.replace("; ", ";\n  ");
    let second = client.submit(&SubmitRequest::new(reformatted)).unwrap();
    assert!(second.cached, "second submission should hit the cache");
    assert_eq!(second.state, JobState::Done);
    let second_report = client.fetch(second.job).unwrap();

    assert_eq!(
        second_report, first_report,
        "cached report must be byte-identical"
    );
    assert_eq!(counter("serve.cache.hit"), hits_before + 1);
    assert_eq!(
        solve_spans(),
        spans_before,
        "a cache hit must not solve again"
    );

    client.shutdown().unwrap();
    server.join();
}

#[test]
fn concurrent_identical_submissions_coalesce_to_one_solve() {
    let _guard = clap_obs::test_lock();
    clap_obs::reset();
    let (server, client) = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });

    const CLIENTS: usize = 8;
    let jobs: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let client = client.clone();
                scope.spawn(move || client.submit(&SubmitRequest::new(LOST_UPDATE)).unwrap().job)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut reports = Vec::new();
    for job in jobs {
        let done = client.wait(job, Duration::from_secs(120)).unwrap();
        assert_eq!(done.state, JobState::Done);
        reports.push(client.fetch(job).unwrap());
    }
    assert!(reports.windows(2).all(|w| w[0] == w[1]));

    // However the submissions interleaved, exactly one pipeline ran: one
    // miss, one solve span; everyone else was a hit or a coalesced waiter.
    assert_eq!(counter("serve.cache.miss"), 1);
    assert_eq!(
        solve_spans(),
        1,
        "coalescing must collapse to a single solve"
    );
    assert_eq!(
        counter("serve.cache.hit") + counter("serve.cache.coalesced"),
        (CLIENTS - 1) as u64
    );

    client.shutdown().unwrap();
    server.join();
}

#[test]
fn journal_makes_the_cache_survive_a_restart() {
    let _guard = clap_obs::test_lock();
    clap_obs::reset();
    let dir = fresh_dir("journal");

    let (server, client) = start(ServeConfig {
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let job = client.submit(&SubmitRequest::new(LOST_UPDATE)).unwrap();
    let done = client.wait(job.job, Duration::from_secs(120)).unwrap();
    let first_report = client.fetch(done.job).unwrap();
    client.shutdown().unwrap();
    server.join();

    // "Kill" the daemon and bring up a fresh one over the same cache dir.
    let spans_before_restart = solve_spans();
    let (server, client) = start(ServeConfig {
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    assert!(counter("serve.cache.journal.loaded") >= 1);

    let job = client.submit(&SubmitRequest::new(LOST_UPDATE)).unwrap();
    assert!(job.cached, "restarted daemon should come back warm");
    let second_report = client.fetch(job.job).unwrap();
    assert_eq!(second_report, first_report);
    assert_eq!(
        solve_spans(),
        spans_before_restart,
        "no re-solve after restart"
    );

    client.shutdown().unwrap();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_journal_lines_are_skipped_not_fatal() {
    let _guard = clap_obs::test_lock();
    clap_obs::reset();
    clap_obs::enable();
    let dir = fresh_dir("corrupt");
    std::fs::create_dir_all(&dir).unwrap();

    // One genuine entry, produced by a real pipeline run...
    let report = clap_core::Pipeline::from_source(LOST_UPDATE)
        .unwrap()
        .reproduce(&clap_core::PipelineConfig::new(clap_vm::MemModel::Sc))
        .unwrap()
        .to_json();
    let journal = format!(
        "{{\"key\":\"00000000deadbeef\",\"report\":{report}}}\n\
         this line is not json\n\
         {{\"key\":\"0000000000000001\"}}\n\
         {{\"key\":\"0000000000000002\",\"report\":{{\"version\":1}}}}\n"
    );
    std::fs::write(dir.join("journal.jsonl"), journal).unwrap();

    // ...surrounded by three kinds of corruption: the open must succeed,
    // keep the good entry, and account the skips.
    let cache = ResultCache::open(&dir).unwrap();
    assert_eq!(cache.len(), 1);
    assert!(cache.peek("00000000deadbeef").is_some());
    assert_eq!(counter("serve.cache.journal.loaded"), 1);
    assert_eq!(counter("serve.cache.journal.skipped"), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_sheds_load_with_backpressure() {
    let _guard = clap_obs::test_lock();
    clap_obs::reset();
    let (server, client) = start(ServeConfig {
        workers: 1,
        queue_cap: 2,
        ..ServeConfig::default()
    });

    // Occupy the single worker with a job that sweeps a large seed
    // budget (no failure to find), then fill the two queue slots.
    let mut stall = SubmitRequest::new(no_failure_program(0));
    stall.seed_budget = Some(100_000);
    client.submit(&stall).unwrap();
    for tag in 1..=2 {
        let mut filler = SubmitRequest::new(no_failure_program(tag));
        filler.seed_budget = Some(50);
        client.submit(&filler).unwrap();
    }

    // The queue is full: further distinct submissions must be shed.
    let mut shed = 0;
    for tag in 3..=6 {
        let mut burst = SubmitRequest::new(no_failure_program(tag));
        burst.seed_budget = Some(50);
        match client.submit(&burst) {
            Err(ClientError::Http { status: 503, .. }) => shed += 1,
            Ok(_) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(shed >= 1, "expected at least one 503 rejection");
    assert!(counter("serve.queue.rejected") >= 1);

    // A full queue must not break the cache path: identical re-submission
    // of an in-flight program still coalesces instead of 503.
    let coalesced = client.submit(&stall).unwrap();
    assert_eq!(coalesced.state, JobState::Queued);
    assert!(counter("serve.cache.coalesced") >= 1);

    // Graceful drain completes every accepted job; nothing deadlocks.
    client.shutdown().unwrap();
    server.join();
    let depth = clap_obs::snapshot()
        .gauges
        .get("serve.queue.depth")
        .copied()
        .unwrap_or(0);
    assert_eq!(depth, 0, "drain must empty the queue");
}

#[test]
fn per_job_sinks_write_disjoint_files() {
    let _guard = clap_obs::test_lock();
    clap_obs::reset();
    let dir = fresh_dir("sinks");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("serve.jsonl");

    let (server, client) = start(ServeConfig {
        observer: clap_obs::Observer::none().with_metrics(&metrics),
        ..ServeConfig::default()
    });
    let a = client.submit(&SubmitRequest::new(LOST_UPDATE)).unwrap();
    client.wait(a.job, Duration::from_secs(120)).unwrap();
    let mut other = SubmitRequest::new(LOST_UPDATE);
    other.model = clap_vm::MemModel::Tso;
    let b = client.submit(&other).unwrap();
    client.wait(b.job, Duration::from_secs(120)).unwrap();
    client.shutdown().unwrap();
    server.join();

    // Each pipeline job flushed its own window to its own file, and the
    // daemon wrote the combined stream on shutdown.
    assert!(dir.join(format!("serve.job{}.jsonl", a.job)).is_file());
    assert!(dir.join(format!("serve.job{}.jsonl", b.job)).is_file());
    assert!(metrics.is_file());
    let combined = std::fs::read_to_string(&metrics).unwrap();
    assert!(combined.contains("serve.cache.miss"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let _guard = clap_obs::test_lock();
    clap_obs::reset();
    let (server, client) = start(ServeConfig::default());

    // Unparseable program → 400 at submit time (fingerprinting parses).
    match client.submit(&SubmitRequest::new("not a program")) {
        Err(ClientError::Http { status: 400, .. }) => {}
        other => panic!("expected 400, got {other:?}"),
    }
    // Unknown job → 404.
    match client.status(999) {
        Err(ClientError::Http { status: 404, .. }) => {}
        other => panic!("expected 404, got {other:?}"),
    }
    // Report of an unfinished job → 409.
    let mut slow = SubmitRequest::new(no_failure_program(9));
    slow.seed_budget = Some(20_000);
    let job = client.submit(&slow).unwrap();
    match client.fetch(job.job) {
        Err(ClientError::Http { status: 409, .. }) => {}
        other => panic!("expected 409, got {other:?}"),
    }
    // A semantically-failing job ends Failed with a message.
    let failed = client.wait(job.job, Duration::from_secs(120)).unwrap();
    assert_eq!(failed.state, JobState::Failed);
    assert!(failed.error.is_some());

    // /metrics scrapes as Prometheus text, /metrics.json as JSON.
    let metrics = client.metrics().unwrap();
    assert!(metrics.contains("# TYPE clap_serve_http_requests counter"));
    let metrics_json = client.metrics_json().unwrap();
    assert!(clap_obs::json::parse(&metrics_json).is_ok());

    client.shutdown().unwrap();
    server.join();
}

#[test]
fn metrics_expose_latency_quantiles_under_concurrent_load() {
    let _guard = clap_obs::test_lock();
    clap_obs::reset();
    let (server, client) = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });

    // Concurrent load: several clients submitting (one solve, the rest
    // cache hits or coalesced) plus status polls, all racing.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let client = client.clone();
            scope.spawn(move || {
                for _ in 0..3 {
                    let job = client.submit(&SubmitRequest::new(LOST_UPDATE)).unwrap();
                    client.wait(job.job, Duration::from_secs(120)).unwrap();
                    let _ = client.status(job.job);
                }
            });
        }
    });

    let text = client.metrics().unwrap();
    // The request-latency histogram for /submit, with cumulative buckets
    // and p50/p95/p99 quantile gauges derived from the log buckets.
    assert!(
        text.contains("# TYPE clap_serve_http_latency_us_submit histogram"),
        "missing submit latency histogram:\n{text}"
    );
    assert!(text.contains("clap_serve_http_latency_us_submit_bucket{le=\"+Inf\"} 12"));
    for q in ["p50", "p95", "p99"] {
        let needle = format!("clap_serve_http_latency_us_submit_{q} ");
        assert!(text.contains(&needle), "missing {q}:\n{text}");
    }
    // Queue depth, cache hit ratio, and shed count are all scrapeable.
    assert!(text.contains("# TYPE clap_serve_queue_depth gauge"));
    assert!(text.contains("# TYPE clap_serve_cache_hit_ratio_pct gauge"));
    assert!(text.contains("clap_serve_jobs_submitted 12"));
    // Queue wait is measured per worked job.
    assert!(text.contains("# TYPE clap_serve_queue_wait_us histogram"));

    client.shutdown().unwrap();
    server.join();
}

#[test]
fn client_minted_trace_id_reaches_the_per_job_sink() {
    let _guard = clap_obs::test_lock();
    clap_obs::reset();
    let dir = fresh_dir("trace");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("serve.jsonl");

    let (server, client) = start(ServeConfig {
        observer: clap_obs::Observer::none().with_metrics(&metrics),
        ..ServeConfig::default()
    });
    let trace_id = clap_serve::mint_trace_id();
    let traced = client.clone().with_trace_id(trace_id.clone());
    assert_eq!(traced.trace_id(), Some(trace_id.as_str()));
    let job = traced.submit(&SubmitRequest::new(LOST_UPDATE)).unwrap();
    traced.wait(job.job, Duration::from_secs(120)).unwrap();
    client.shutdown().unwrap();
    server.join();

    // The per-job sink opens with the client's trace id and carries the
    // serve.job.trace event binding job ↔ trace ↔ queue wait; every line
    // still validates against the strict schema.
    let path = dir.join(format!("serve.job{}.jsonl", job.job));
    let sink = std::fs::read_to_string(&path).unwrap();
    for line in sink.lines() {
        clap_obs::sink::validate_jsonl_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
    }
    assert!(
        sink.contains(&format!(
            "{{\"type\":\"trace\",\"trace_id\":\"{trace_id}\"}}"
        )),
        "per-job sink missing the trace record:\n{sink}"
    );
    let trace_event = sink
        .lines()
        .find(|l| l.contains("serve.job.trace"))
        .expect("serve.job.trace event in the job window");
    assert!(trace_event.contains(&trace_id));
    assert!(trace_event.contains("queue_wait_us"));

    // An untraced submission gets no trace record, but still events.
    let combined = std::fs::read_to_string(&metrics).unwrap();
    assert!(combined.contains("serve.job.trace"));
    let _ = std::fs::remove_dir_all(&dir);
}
