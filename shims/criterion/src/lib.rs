//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro and builder surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`] and [`black_box`] — measuring wall-clock time and
//! printing one `group/function/param: mean ± spread` line per benchmark.
//! No statistical machinery, no HTML reports; the numbers are honest
//! means over `sample_size` timed runs after one warm-up run.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark id: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running one warm-up call then `sample_size` timed
    /// calls.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// The top-level harness state.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line arguments (the first non-flag argument is a
    /// substring filter; flags are accepted and ignored).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let id = id.into_id();
        run_one(self, None, &id, 10, f);
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed runs per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into_id();
        run_one(self.criterion, Some(&self.name), &id, self.sample_size, f);
        self
    }

    /// Times one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into_id();
        run_one(
            self.criterion,
            Some(&self.name),
            &id,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one(
    criterion: &Criterion,
    group: Option<&str>,
    id: &str,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_owned(),
    };
    if let Some(filter) = &criterion.filter {
        if !full.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{full:<60} (no measurement — routine never called iter)");
        return;
    }
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{full:<60} {:>12} /iter   [{} .. {}]  ({} samples)",
        fmt(mean),
        fmt(min),
        fmt(max),
        samples.len()
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", d.as_secs_f64())
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_renders_function_and_parameter() {
        assert_eq!(
            BenchmarkId::new("solve", "dekker").into_id(),
            "solve/dekker"
        );
        assert_eq!(BenchmarkId::from_parameter(4).into_id(), "4");
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(5);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // One warm-up + five timed runs.
        assert_eq!(calls, 6);
    }
}
