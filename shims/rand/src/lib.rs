//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`] and
//! [`Rng::gen_range`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically solid and deterministic per seed, which is
//! all the seeded-schedule exploration needs. The stream differs from the
//! real `rand` crate's ChaCha12-based `StdRng`, so *which* seeds produce
//! failing interleavings differs from builds against crates.io, but every
//! consumer in this workspace treats seeds as opaque sweep indices.

use std::ops::Range;

/// Seedable random generators (API-compatible subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values [`Rng::gen_range`] accepts: half-open ranges over the integer
/// types this workspace samples.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform sample from the range.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Unbiased via rejection of the incomplete final block.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = next();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<i64> {
    type Output = i64;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> i64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = next();
            if v < zone {
                return self.start.wrapping_add((v % span) as i64);
            }
        }
    }
}

/// Random-value convenience methods (API-compatible subset).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Draws a uniform sample from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), state-expanded from the seed with SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the seed into full state; the
            // all-zero state (unreachable from SplitMix64) would be a
            // fixed point.
            let mut x = seed;
            let mut splitmix = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [splitmix(), splitmix(), splitmix(), splitmix()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 drawn");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "got {hits} hits for p=0.3");
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
