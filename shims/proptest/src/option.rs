//! Strategies for `Option` values.

use crate::{Strategy, TestRng};

/// The strategy returned by [`of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(2) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

/// `Option<S::Value>` values: `None` half the time, `Some` of an
/// `element` draw otherwise.
pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
    OptionStrategy { inner: element }
}
