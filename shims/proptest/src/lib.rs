//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendors the API
//! subset the workspace's property tests use: the [`proptest!`] macro
//! (with `#![proptest_config(..)]`), [`Strategy`] with `prop_map`,
//! [`Just`], integer-range and tuple strategies, [`collection::vec`],
//! [`any`], a regex-subset string strategy (`".*"`, `"[a-z]{1,4}"`, …),
//! [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its test name, case index, and seed instead of a minimized input), and
//! the per-test RNG is seeded deterministically from the test name so
//! runs are reproducible; set `PROPTEST_SEED` to perturb all tests and
//! `PROPTEST_CASES` to override the case count globally.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod option;
pub mod string;

/// Runner configuration, selectable per `proptest!` block via
/// `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Randomized cases to run per test.
    pub cases: u32,
    /// Unused knob kept for struct-update compatibility.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
        }
    }
}

/// A test-case failure or rejection, produced by the `prop_assert*`
/// macros or returned explicitly from a test body.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The input is outside the property's domain (counts as skipped).
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Creates a rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "property failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// The per-test random source.
#[derive(Debug)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Seeds deterministically from the test name (FNV-1a), perturbed by
    /// `PROPTEST_SEED` when set.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = extra.parse::<u64>() {
                h ^= v;
            }
        }
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// A raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniform draw from `0..n`.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        std::rc::Rc::new(self)
    }
}

/// A type-erased strategy; `Rc` so composed strategies stay cloneable
/// (real proptest's `BoxedStrategy` is `Clone` the same way).
pub type BoxedStrategy<V> = std::rc::Rc<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// The strategy producing exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// `&str` patterns are regex-subset string strategies (see
/// [`string::sample_pattern`]).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        string::sample_pattern(self, rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// The [`prop_oneof!`] backing type: uniform choice among boxed
/// strategies of one value type.
pub struct Union<V> {
    choices: Vec<BoxedStrategy<V>>,
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.choices.len());
        self.choices[i].sample(rng)
    }
}

/// Builds a [`Union`]; used by [`prop_oneof!`].
pub fn union<V>(choices: Vec<BoxedStrategy<V>>) -> Union<V> {
    assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
    Union { choices }
}

/// The common imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fails the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ..)`
/// runs `cases` times over freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(reason)) => {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            reason
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..200 {
            let v = Strategy::sample(&(3u32..9), &mut rng);
            assert!((3..9).contains(&v));
            let (a, b) = Strategy::sample(&((0u32..4), (10u32..12)), &mut rng);
            assert!(a < 4 && (10..12).contains(&b));
        }
    }

    #[test]
    fn oneof_draws_each_choice() {
        let mut rng = TestRng::for_test("oneof");
        let strategy = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::sample(&strategy, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself: patterns, multiple args, early return.
        #[test]
        fn macro_round_trip(xs in crate::collection::vec(0u32..10, 0..5), y in any::<u64>()) {
            prop_assert!(xs.len() < 5);
            prop_assert_eq!(y, y);
            if xs.is_empty() {
                return Ok(());
            }
            prop_assert!(xs.iter().all(|&x| x < 10));
        }
    }
}
