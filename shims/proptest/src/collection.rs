//! Collection strategies.

use crate::{Strategy, TestRng};
use std::ops::Range;

/// A strategy for `Vec<S::Value>` with a length drawn from a range.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.start + 1 >= self.size.end {
            self.size.start
        } else {
            self.size.start + rng.below(self.size.end - self.size.start)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Vectors of `element` values with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec length range");
    VecStrategy { element, size }
}
