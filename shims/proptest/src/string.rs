//! A regex-subset string sampler: the engine behind `&str` strategies.
//!
//! Supports the pattern forms the workspace's tests use — `.`, character
//! classes with ranges and escapes (`[a-z]`, `[ \t\n]`), literal
//! characters, and the repeaters `*`, `+`, `{m}`, `{m,n}`. Unbounded
//! repeaters draw lengths in `0..=16`.

use crate::TestRng;

#[derive(Debug, Clone)]
enum Unit {
    /// `.` — any char except newline; occasionally samples beyond ASCII
    /// to keep fuzzing interesting.
    AnyChar,
    /// `[...]` — one of an explicit set of chars.
    Class(Vec<char>),
    /// A literal character.
    Literal(char),
}

#[derive(Debug, Clone)]
struct Atom {
    unit: Unit,
    min: usize,
    max: usize,
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let unit = match chars[i] {
            '.' => {
                i += 1;
                Unit::AnyChar
            }
            '\\' => {
                assert!(
                    i + 1 < chars.len(),
                    "dangling escape in pattern `{pattern}`"
                );
                i += 2;
                Unit::Literal(unescape(chars[i - 1]))
            }
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        assert!(i < chars.len(), "dangling escape in class of `{pattern}`");
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = chars[i + 2];
                        assert!(c <= hi, "inverted class range in `{pattern}`");
                        for v in c as u32..=hi as u32 {
                            if let Some(ch) = char::from_u32(v) {
                                set.push(ch);
                            }
                        }
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in `{pattern}`");
                assert!(!set.is_empty(), "empty class in `{pattern}`");
                i += 1;
                Unit::Class(set)
            }
            literal => {
                i += 1;
                Unit::Literal(literal)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 16)
            }
            Some('+') => {
                i += 1;
                (1, 16)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated repeat in `{pattern}`"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repeat lower bound"),
                        hi.trim().parse().expect("repeat upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("repeat count");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted repeat bounds in `{pattern}`");
        atoms.push(Atom { unit, min, max });
    }
    atoms
}

fn sample_any_char(rng: &mut TestRng) -> char {
    // Mostly printable ASCII; a tail of arbitrary scalars keeps parser
    // fuzzing honest. Never a newline (regex `.` semantics).
    if rng.below(10) < 9 {
        char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or('?')
    } else {
        loop {
            let v = (rng.next_u64() % 0x11_0000) as u32;
            match char::from_u32(v) {
                Some('\n') | None => continue,
                Some(c) => return c,
            }
        }
    }
}

/// Draws one string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let count = if atom.min == atom.max {
            atom.min
        } else {
            atom.min + rng.below(atom.max - atom.min + 1)
        };
        for _ in 0..count {
            match &atom.unit {
                Unit::AnyChar => out.push(sample_any_char(rng)),
                Unit::Class(set) => out.push(set[rng.below(set.len())]),
                Unit::Literal(c) => out.push(*c),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::sample_pattern;
    use crate::TestRng;

    #[test]
    fn class_with_bounds() {
        let mut rng = TestRng::for_test("class");
        for _ in 0..100 {
            let s = sample_pattern("[a-z]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn whitespace_class_and_star() {
        let mut rng = TestRng::for_test("ws");
        let mut nonempty = false;
        for _ in 0..100 {
            let s = sample_pattern("[ \\t\\n]{0,3}", &mut rng);
            assert!(s.chars().count() <= 3);
            assert!(
                s.chars().all(|c| c == ' ' || c == '\t' || c == '\n'),
                "{s:?}"
            );
            nonempty |= !s.is_empty();
            let t = sample_pattern(".*", &mut rng);
            assert!(!t.contains('\n'));
        }
        assert!(nonempty);
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = TestRng::for_test("lit");
        assert_eq!(sample_pattern("abc", &mut rng), "abc");
        assert_eq!(sample_pattern("a{3}", &mut rng), "aaa");
    }
}
