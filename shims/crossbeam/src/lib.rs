//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the [`channel`] API subset this workspace uses: bounded and
//! unbounded MPMC channels with cloneable senders *and* receivers, built
//! on `std::sync::{Mutex, Condvar}`. Slower than real crossbeam under
//! heavy contention, but the workspace sends coarse batches through these
//! channels precisely so channel overhead stays off the hot path.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (MPMC — each message is delivered to
    /// exactly one receiver).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a channel holding at most `cap` in-flight messages; sends
    /// block while it is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    /// Creates a channel with no capacity bound; sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().expect("channel lock");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.inner.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.inner.not_full.wait(state).expect("channel lock");
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking while the channel is empty
        /// and senders remain.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().expect("channel lock");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.not_empty.wait(state).expect("channel lock");
            }
        }

        /// Dequeues the next message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] once all senders are gone and
        /// the queue is drained.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.state.lock().expect("channel lock");
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel lock").senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel lock").receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Receivers blocked on an empty queue must observe the
                // disconnect.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().expect("channel lock");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // Senders blocked on a full queue must observe the
                // disconnect.
                self.inner.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn fan_out_fan_in_delivers_every_message() {
        let (tx, rx) = channel::bounded::<u64>(4);
        let total: u64 = thread::scope(|scope| {
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    scope.spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            drop(rx);
            for v in 1..=100 {
                tx.send(v).expect("receivers alive");
            }
            drop(tx);
            consumers
                .into_iter()
                .map(|c| c.join().expect("consumer"))
                .sum()
        });
        assert_eq!(total, 5050);
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(9).is_err());
    }
}
