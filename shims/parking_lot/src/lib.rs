//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` behind `parking_lot`'s panic-free API: `lock`
//! returns the guard directly and a poisoned mutex is transparently
//! recovered rather than surfaced as an error (matching `parking_lot`,
//! which has no poisoning at all).

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion primitive without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// The guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
