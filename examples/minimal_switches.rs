//! Minimal-context-switch schedules (§4.2 of the paper): the same
//! recorded failure solved twice — once by the sequential solver (any
//! satisfying schedule) and once by the parallel generate-and-validate
//! engine, which exhausts preemption bounds in increasing order and
//! therefore returns a schedule with the fewest preemptions. Fewer
//! preemptions means longer sequential stretches and a far easier
//! debugging read.
//!
//! ```text
//! cargo run --release --example minimal_switches
//! ```

use clap_constraints::ConstraintSystem;
use clap_core::{Pipeline, PipelineConfig};
use clap_parallel::{solve_parallel, ParallelConfig, ParallelOutcome};
use clap_solver::{solve, SolverConfig};
use clap_symex::SymTrace;

fn show(trace: &SymTrace, schedule: &clap_constraints::Schedule) -> String {
    schedule.thread_letters(trace)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = clap_workloads::by_name("sim_race").expect("sim_race is in the suite");
    let pipeline = Pipeline::new(workload.program());
    let mut config = PipelineConfig::new(workload.model);
    config.stickiness = workload.stickiness.to_vec();
    config.seed_budget = workload.seed_budget;

    let recorded = pipeline.record_failure(&config)?;
    let trace = pipeline.symbolic_trace(&recorded)?;
    let system = ConstraintSystem::build(pipeline.program(), &trace, workload.model);

    let seq = solve(pipeline.program(), &system, SolverConfig::default());
    let seq_solution = seq.solution().expect("sequential solver finds a schedule");
    println!(
        "sequential solver : {}  ({} preemptions)",
        show(&trace, &seq_solution.schedule),
        seq_solution.schedule.context_switches(&trace)
    );

    let par = solve_parallel(pipeline.program(), &system, ParallelConfig::default());
    let ParallelOutcome::Found {
        schedule,
        cs,
        stats,
        ..
    } = par
    else {
        panic!("parallel engine finds a schedule: {par:?}")
    };
    println!(
        "parallel engine   : {}  ({} preemptions, minimal; {} candidates generated)",
        show(&trace, &schedule),
        cs,
        stats.generated
    );
    println!();
    println!("(M = main, A/B/… = worker threads; each letter is one shared");
    println!("access point. The minimal schedule reads as long sequential");
    println!("bursts with just enough preemption to lose an update.)");
    Ok(())
}
