//! Quickstart: reproduce a classic lost-update race end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The pipeline (1) explores seeded schedules with ONLY the thread-local
//! path recorder attached until the assert fails, (2) symbolically
//! re-executes the recorded paths, (3) solves the CLAP constraints for a
//! schedule of the shared access points, and (4) replays that schedule
//! deterministically, firing the same assert.

use clap_core::{Pipeline, PipelineConfig};
use clap_vm::MemModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        global int balance = 0;

        fn deposit(amount: int) {
            let current: int = balance;
            yield;
            balance = current + amount;
        }

        fn main() {
            let a: thread = fork deposit(100);
            let b: thread = fork deposit(50);
            join a;
            join b;
            assert(balance == 150, "a deposit was lost");
        }
    "#;

    let pipeline = Pipeline::from_source(source)?;
    let report = pipeline.reproduce(&PipelineConfig::new(MemModel::Sc))?;

    println!("bug reproduced: {}", report.reproduced);
    println!("recorded seed:  {}", report.seed);
    println!(
        "trace:          {} threads, {} instructions, {} shared access points",
        report.threads, report.instructions, report.saps
    );
    println!(
        "constraints:    {} clauses over {} variables",
        report.constraints.total_clauses(),
        report.constraints.total_vars()
    );
    println!(
        "path log:       {} bytes (no shared-memory dependencies recorded!)",
        report.log_bytes
    );
    println!(
        "context switches in the computed schedule: {}",
        report.context_switches
    );
    println!();
    println!("The witness values explain the failure: the two deposits read");
    println!("the same initial balance, so the later write overwrote the");
    println!("earlier one. Witness assignment (per symbolic read):");
    for (i, v) in report.witness.assignment.iter().enumerate() {
        println!("  R{i} = {v}");
    }
    Ok(())
}
