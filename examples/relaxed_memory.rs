//! Relaxed-memory reproduction: Dekker's mutual-exclusion algorithm is
//! correct under sequential consistency but breaks on TSO (store
//! buffering). CLAP's logging adds **no fences**, so the relaxed-memory
//! failure survives recording, and the memory-order constraints `F_mo`
//! are model-aware, so the computed schedule places each store's *drain*
//! (the moment it becomes globally visible) explicitly.
//!
//! ```text
//! cargo run --release --example relaxed_memory
//! ```

use clap_core::{Pipeline, PipelineConfig, PipelineError};
use clap_vm::MemModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = clap_workloads::by_name("dekker").expect("dekker is in the suite");
    println!("Dekker's algorithm, two threads, two critical-section entries each.\n");

    // Under SC the algorithm is correct: no failure exists to record.
    let pipeline = Pipeline::new(workload.program());
    let mut sc_config = PipelineConfig::new(MemModel::Sc);
    sc_config.seed_budget = 300;
    match pipeline.reproduce(&sc_config) {
        Err(PipelineError::NoFailureFound) => {
            println!("SC:  no failure in 300 seeds — mutual exclusion holds, as proven.")
        }
        other => println!("SC:  unexpected: {other:?}"),
    }

    // Under TSO the flag stores buffer and both threads enter the
    // critical section.
    let mut tso_config = PipelineConfig::new(MemModel::Tso);
    tso_config.stickiness = workload.stickiness.to_vec();
    tso_config.seed_budget = workload.seed_budget;
    let report = pipeline.reproduce(&tso_config)?;
    println!(
        "TSO: reproduced = {} (seed {}, {} SAPs, {} context switches)",
        report.reproduced, report.seed, report.saps, report.context_switches
    );
    println!();
    println!("The schedule interleaves each thread's store *drains* after the");
    println!("other thread's flag reads: both see flag == 0, both enter the");
    println!("critical section, and the counter increment is lost. Replay");
    println!("enforces exactly those drain points, so the failure is");
    println!("deterministic. Reads-from of the witness:");
    for (read, source) in report.witness.reads_from.iter().take(8) {
        println!("  {read} <- {source:?}");
    }
    Ok(())
}
