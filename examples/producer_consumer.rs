//! Reproducing an order violation in a condvar-based producer/consumer —
//! the pbzip2-0.9.4 bug shape: the main thread tears down a resource (the
//! queue mutex, modelled by a validity flag) while consumer threads are
//! still using it.
//!
//! This exercises the synchronization constraints `F_so`: lock regions
//! must not interleave, each completed `wait` must be matched to a signal
//! that happened between its release and its completion, and fork/join
//! edges bound everything.
//!
//! ```text
//! cargo run --release --example producer_consumer
//! ```

use clap_core::{Pipeline, PipelineConfig, SolverChoice};
use clap_parallel::ParallelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = clap_workloads::by_name("pbzip2").expect("pbzip2 is in the suite");
    println!("{}", workload.source.trim());
    println!();

    let pipeline = Pipeline::new(workload.program());
    let mut config = PipelineConfig::new(workload.model);
    config.stickiness = workload.stickiness.to_vec();
    config.seed_budget = workload.seed_budget;
    // The parallel engine exhausts preemption bounds in order, so the
    // schedule it returns has the minimal number of preemptions.
    config.solver = SolverChoice::Parallel(ParallelConfig::default());

    let report = pipeline.reproduce(&config)?;
    println!(
        "reproduced: {} with {} preemptive context switches",
        report.reproduced, report.context_switches
    );
    println!(
        "trace: {} threads, {} SAPs; constraints: {} clauses / {} variables",
        report.threads,
        report.saps,
        report.constraints.total_clauses(),
        report.constraints.total_vars()
    );
    println!();
    println!("Reading the schedule tells the story: the main thread finishes");
    println!("producing and nullifies the mutex-validity flag while a consumer");
    println!("is between its validity check and its queue access.");
    Ok(())
}
