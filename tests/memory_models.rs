//! End-to-end memory-model matrix: the classic litmus tests behave as SC /
//! TSO / PSO / C11 dictate during exploration, and every model-specific
//! failure round-trips through the full pipeline.

use clap_core::{Pipeline, PipelineConfig};
use clap_vm::{MemModel, NullMonitor, RandomScheduler, Vm};

/// Sweeps seeds at several stickiness values; `true` if any run fails.
fn fails_somewhere(src: &str, model: MemModel, budget: u64) -> bool {
    let program = clap_ir::parse(src).expect("litmus parses");
    for stick in [0.5, 0.7, 0.3, 0.9] {
        for seed in 0..budget {
            let mut vm = Vm::new(&program, model);
            vm.set_step_limit(500_000);
            let mut sched = RandomScheduler::with_stickiness(seed, stick);
            if vm.run(&mut sched, &mut NullMonitor).is_failure() {
                return true;
            }
        }
    }
    false
}

const SB: &str = "global int x = 0; global int y = 0;
     global int r1 = -1; global int r2 = -1;
     fn t1() { x = 1; r1 = y; }
     fn t2() { y = 1; r2 = x; }
     fn main() {
         let a: thread = fork t1(); let b: thread = fork t2();
         join a; join b;
         assert(r1 + r2 > 0, \"store buffering\");
     }";

const MP: &str = "global int data = 0; global int flag = 0; global int seen = -1;
     fn writer() { data = 1; flag = 1; }
     fn reader() { let f: int = flag; if (f == 1) { seen = data; } }
     fn main() {
         let w: thread = fork writer(); let r: thread = fork reader();
         join w; join r;
         assert(seen != 0, \"message passing\");
     }";

const COHERENCE: &str = "global int x = 0; global int r1 = -1; global int r2 = -1;
     fn writer() { x = 1; x = 2; }
     fn reader() { let a: int = x; let b: int = x; r1 = a; r2 = b; }
     fn main() {
         let w: thread = fork writer(); let r: thread = fork reader();
         join w; join r;
         assert(r1 <= r2, \"same-address coherence\");
     }";

const FENCED_MP: &str = "global int data = 0; global int flag = 0; global int seen = -1; mutex m;
     fn writer() { data = 1; lock(m); unlock(m); flag = 1; }
     fn reader() { let f: int = flag; if (f == 1) { seen = data; } }
     fn main() {
         let w: thread = fork writer(); let r: thread = fork reader();
         join w; join r;
         assert(seen != 0, \"fenced message passing\");
     }";

#[test]
fn store_buffering_matrix() {
    assert!(!fails_somewhere(SB, MemModel::Sc, 400), "SC forbids SB");
    assert!(fails_somewhere(SB, MemModel::Tso, 2000), "TSO allows SB");
    assert!(fails_somewhere(SB, MemModel::Pso, 2000), "PSO allows SB");
}

#[test]
fn message_passing_matrix() {
    assert!(
        !fails_somewhere(MP, MemModel::Sc, 400),
        "SC forbids MP reorder"
    );
    assert!(
        !fails_somewhere(MP, MemModel::Tso, 400),
        "TSO keeps store order"
    );
    assert!(
        fails_somewhere(MP, MemModel::Pso, 4000),
        "PSO reorders the stores"
    );
}

#[test]
fn same_address_coherence_holds_everywhere() {
    for model in [MemModel::Sc, MemModel::Tso, MemModel::Pso] {
        assert!(
            !fails_somewhere(COHERENCE, model, 400),
            "per-address store order is FIFO under {model}"
        );
    }
}

#[test]
fn fences_restore_message_passing() {
    assert!(
        !fails_somewhere(FENCED_MP, MemModel::Pso, 400),
        "lock/unlock fences forbid the PSO reorder"
    );
}

const IRIW: &str = "global int x = 0; global int y = 0;
     global int a = -1; global int b = -1; global int c = -1; global int d = -1;
     fn wx() { x = 1; }
     fn wy() { y = 1; }
     fn r1() { a = x; b = y; }
     fn r2() { c = y; d = x; }
     fn main() {
         let t1: thread = fork wx(); let t2: thread = fork wy();
         let t3: thread = fork r1(); let t4: thread = fork r2();
         join t1; join t2; join t3; join t4;
         assert(!(a == 1 && b == 0 && c == 1 && d == 0), \"IRIW\");
     }";

const LB: &str = "global int x = 0; global int y = 0;
     global int r1 = -1; global int r2 = -1;
     fn t1() { r1 = x; y = 1; }
     fn t2() { r2 = y; x = 1; }
     fn main() {
         let a: thread = fork t1(); let b: thread = fork t2();
         join a; join b;
         assert(!(r1 == 1 && r2 == 1), \"load buffering\");
     }";

#[test]
fn iriw_and_load_buffering_forbidden_on_store_buffer_machines() {
    // Store-buffer models (TSO/PSO) have a single memory order for store
    // visibility (multi-copy atomicity), so IRIW's disagreeing readers
    // and LB's out-of-thin-air-ish cycle are impossible under every model
    // we implement.
    for model in [MemModel::Sc, MemModel::Tso, MemModel::Pso] {
        assert!(
            !fails_somewhere(IRIW, model, 400),
            "IRIW forbidden under {model}"
        );
        assert!(
            !fails_somewhere(LB, model, 400),
            "LB forbidden under {model}"
        );
    }
}

const ATOMIC_MP_RELAXED: &str = "atomic int data = 0; atomic int flag = 0; global int seen = -1;
     fn writer() { store(data, 1, relaxed); store(flag, 1, relaxed); }
     fn reader() {
         let f: int = load(flag, acquire);
         if (f == 1) { let d: int = load(data, acquire); seen = d; }
     }
     fn main() {
         let w: thread = fork writer(); let r: thread = fork reader();
         join w; join r;
         assert(seen != 0, \"relaxed publish\");
     }";

const ATOMIC_MP_RELEASE: &str = "atomic int data = 0; atomic int flag = 0; global int seen = -1;
     fn writer() { store(data, 1, relaxed); store(flag, 1, release); }
     fn reader() {
         let f: int = load(flag, acquire);
         if (f == 1) { let d: int = load(data, acquire); seen = d; }
     }
     fn main() {
         let w: thread = fork writer(); let r: thread = fork reader();
         join w; join r;
         assert(seen != 0, \"release publish\");
     }";

#[test]
fn c11_atomics_matrix() {
    // Plain accesses stay SC under C11: the plain-variable litmus shapes
    // cannot fail even on the weak axis.
    assert!(
        !fails_somewhere(SB, MemModel::C11, 400),
        "plain accesses are SC under C11"
    );
    assert!(
        !fails_somewhere(MP, MemModel::C11, 400),
        "plain MP forbidden under C11"
    );
    // A relaxed flag publish drains independently of the data store, so
    // the reader can observe the flag before the data; upgrading the
    // publish to release gates its drain behind every earlier pending
    // store and forbids the reorder.
    assert!(
        fails_somewhere(ATOMIC_MP_RELAXED, MemModel::C11, 4000),
        "relaxed publish reorders under C11"
    );
    assert!(
        !fails_somewhere(ATOMIC_MP_RELEASE, MemModel::C11, 400),
        "release publish forbids the reorder"
    );
    // Under SC and TSO the same atomic program keeps the plain-store
    // guarantees (SC: no buffering; TSO: one FIFO preserves store order).
    assert!(
        !fails_somewhere(ATOMIC_MP_RELAXED, MemModel::Sc, 400),
        "relaxed publish is ordered under SC"
    );
    assert!(
        !fails_somewhere(ATOMIC_MP_RELAXED, MemModel::Tso, 400),
        "relaxed publish is ordered under TSO"
    );
}

#[test]
fn model_specific_failures_reproduce_end_to_end() {
    for (src, model) in [
        (SB, MemModel::Tso),
        (SB, MemModel::Pso),
        (MP, MemModel::Pso),
        (ATOMIC_MP_RELAXED, MemModel::C11),
    ] {
        let pipeline = Pipeline::from_source(src).expect("parses");
        let mut config = PipelineConfig::new(model);
        config.stickiness = vec![0.5, 0.7, 0.3];
        let report = pipeline
            .reproduce(&config)
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        assert!(
            report.reproduced,
            "{model} failure replays deterministically"
        );
    }
}
