//! Integration tests for the `clap-obs` observability layer: the JSONL
//! schema must stay stable, the disabled collector must be near-free, the
//! exploration telemetry must not depend on the worker count, the
//! per-phase timings must account for the end-to-end wall time, and the
//! `with_observer` plumbing must produce a loadable Chrome trace plus a
//! schema-clean JSONL stream.
//!
//! Every test takes `clap_obs::test_lock()` first: the collector is
//! process-global and the test harness runs tests concurrently.

use clap_core::{Pipeline, PipelineConfig};
use clap_obs::sink::{validate_jsonl_line, write_jsonl, JSONL_SCHEMA};
use clap_obs::{json, Observer};
use clap_vm::MemModel;
use std::time::{Duration, Instant};

const LOST_UPDATE: &str = "global int x = 0;
     fn w() { let v: int = x; yield; x = v + 1; }
     fn main() { let a: thread = fork w(); let b: thread = fork w();
                 join a; join b; assert(x == 2, \"lost\"); }";

/// The six pipeline phases every reproduction run must report.
const PHASES: [&str; 6] = ["record", "decode", "symex", "constrain", "solve", "replay"];

/// A scratch path under the system temp dir, unique per test name.
fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("clap_obs_test_{}_{name}", std::process::id()))
}

#[test]
fn jsonl_stream_matches_schema_snapshot() {
    let _l = clap_obs::test_lock();
    clap_obs::reset();
    clap_obs::enable();
    {
        let _root = clap_obs::span("outer");
        let _leaf = clap_obs::span("inner");
        clap_obs::add("c.hits", 3);
        clap_obs::gauge("g.depth", -2);
        clap_obs::observe("h.bytes", 1024);
        clap_obs::event("e.note", &[("k", "v\"quoted\"".to_owned())]);
    }
    let snap = clap_obs::snapshot();
    clap_obs::disable();

    let mut buf = Vec::new();
    write_jsonl(&snap, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();

    // Every record type appears, every line validates, and the observed
    // key order is byte-for-byte the one JSONL_SCHEMA promises. A failure
    // here means the on-disk format changed: update JSONL_SCHEMA *and*
    // downstream consumers together.
    let mut seen: Vec<&str> = Vec::new();
    for line in text.lines() {
        let ty = validate_jsonl_line(line).unwrap_or_else(|e| panic!("{e}\nline: {line}"));
        if !seen.contains(&ty) {
            seen.push(ty);
        }
        let parsed = json::parse(line).unwrap();
        let keys = parsed.keys().unwrap();
        let want = JSONL_SCHEMA.iter().find(|(t, _)| *t == ty).unwrap().1;
        assert_eq!(keys, want, "key order drifted for `{ty}`");
    }
    assert_eq!(
        seen,
        ["meta", "span", "counter", "gauge", "hist", "event"],
        "record types missing or out of order"
    );
    assert!(
        text.starts_with("{\"type\":\"meta\""),
        "meta line must lead"
    );
}

#[test]
fn disabled_collector_overhead_is_negligible() {
    let _l = clap_obs::test_lock();
    clap_obs::reset();
    clap_obs::disable();

    const N: u64 = 200_000;
    let start = Instant::now();
    for i in 0..N {
        let _s = clap_obs::span("noop");
        clap_obs::add("noop.counter", i);
        clap_obs::gauge("noop.gauge", i as i64);
        clap_obs::observe("noop.hist", i);
    }
    let elapsed = start.elapsed();

    // Four probes per iteration; each is a single relaxed atomic load when
    // disabled (~1 ns). The quantile-histogram rework made the *enabled*
    // observe() path do a sparse bucket insert, but the disabled path is
    // still the same one atomic load — this bound re-pins that. Two orders
    // of magnitude of headroom keep it robust on loaded single-core CI
    // hosts.
    let per_probe_ns = elapsed.as_nanos() / (N as u128 * 4);
    assert!(
        per_probe_ns < 500,
        "disabled probe costs {per_probe_ns} ns, expected near-zero"
    );
    // And nothing must have been recorded.
    let snap = clap_obs::snapshot();
    assert!(snap.spans.is_empty() && snap.counters.is_empty() && snap.hists.is_empty());
}

#[test]
fn exploration_telemetry_is_worker_count_invariant() {
    let _l = clap_obs::test_lock();
    let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
    let config = PipelineConfig::new(MemModel::Sc);

    // Render the deterministic slice of the telemetry — the `explore.*`
    // counters — exactly as the JSONL sink would.
    let explore_counters = |workers: usize| -> String {
        clap_obs::reset();
        clap_obs::enable();
        pipeline
            .record_failure(&config.clone().with_explore_workers(workers))
            .expect("record succeeds");
        let snap = clap_obs::snapshot();
        clap_obs::disable();
        snap.counters
            .iter()
            .filter(|(name, _)| name.starts_with("explore."))
            .map(|(name, value)| {
                format!("{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{value}}}\n")
            })
            .collect()
    };

    let one = explore_counters(1);
    let eight = explore_counters(8);
    assert!(
        one.contains("explore.levels") && one.contains("explore.seeds"),
        "expected exploration counters, got:\n{one}"
    );
    assert_eq!(one, eight, "exploration telemetry must be byte-identical");
}

#[test]
fn phase_timings_account_for_wall_time() {
    let _l = clap_obs::test_lock();
    let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
    let config = PipelineConfig::new(MemModel::Sc);
    let report = pipeline.reproduce(&config).expect("reproduce succeeds");

    let phases = report.phases;
    assert!(phases.record > Duration::ZERO, "record phase must be timed");
    assert!(
        phases.total >= phases.phase_sum(),
        "phases cannot exceed total"
    );

    // The six phases must cover the end-to-end wall clock: at most 5% (or
    // a 1 ms floor for sub-millisecond runs) may be unattributed.
    let gap = phases.total - phases.phase_sum();
    let slack = std::cmp::max(phases.total / 20, Duration::from_millis(1));
    assert!(
        gap <= slack,
        "unattributed time {gap:?} exceeds {slack:?} of total {phases:?}"
    );
}

#[test]
fn observer_produces_chrome_trace_and_jsonl() {
    let _l = clap_obs::test_lock();
    let trace_path = tmp("trace.json");
    let metrics_path = tmp("metrics.jsonl");

    let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
    let config = PipelineConfig::new(MemModel::Sc).with_observer(
        Observer::none()
            .with_trace(&trace_path)
            .with_metrics(&metrics_path),
    );
    let report = pipeline.reproduce(&config).expect("reproduce succeeds");
    assert!(report.reproduced, "lost update must reproduce");

    // The Chrome trace parses as JSON and carries a complete (`ph: "X"`)
    // event for each of the six phases.
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    let v = json::parse(&trace).expect("trace is valid JSON");
    let events = v.get("traceEvents").and_then(json::Value::as_arr).unwrap();
    let span_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
        .filter_map(|e| e.get("name").and_then(json::Value::as_str))
        .collect();
    for phase in PHASES {
        assert!(
            span_names.contains(&phase),
            "missing `{phase}` span in trace"
        );
    }

    // Every JSONL line validates, and the stream covers the six phase
    // spans plus the solver counters.
    let metrics = std::fs::read_to_string(&metrics_path).unwrap();
    let mut jsonl_spans = Vec::new();
    let mut counter_names = Vec::new();
    for line in metrics.lines() {
        let ty = validate_jsonl_line(line).unwrap_or_else(|e| panic!("{e}\nline: {line}"));
        let name = json::parse(line)
            .unwrap()
            .get("name")
            .and_then(json::Value::as_str)
            .map(str::to_owned);
        match (ty, name) {
            ("span", Some(n)) => jsonl_spans.push(n),
            ("counter", Some(n)) => counter_names.push(n),
            _ => {}
        }
    }
    for phase in PHASES {
        assert!(
            jsonl_spans.iter().any(|n| n == phase),
            "missing `{phase}` span in JSONL"
        );
    }
    for counter in [
        "solver.decisions",
        "solver.propagations",
        "symex.instructions",
    ] {
        assert!(
            counter_names.iter().any(|n| n == counter),
            "missing `{counter}` counter in JSONL"
        );
    }

    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&metrics_path);
}
