//! Property-based cross-crate tests: randomized racy programs must be
//! reproducible whenever they fail, the two solving engines must agree,
//! and every validator-approved schedule must replay.

use clap_constraints::{validate, ConstraintSystem, Schedule};
use clap_core::{Pipeline, PipelineConfig};
use clap_symex::SapId;
use clap_vm::MemModel;
use proptest::prelude::*;

/// One worker statement template for the random-program generator.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Unprotected read-modify-write of `x` (racy).
    IncX,
    /// Unprotected read-modify-write of `y` (racy).
    IncY,
    /// Lock-protected increment of `x` (safe).
    LockedIncX,
}

fn op_source(op: Op, temp: usize) -> String {
    match op {
        Op::IncX => format!("let t{temp}: int = x; yield; x = t{temp} + 1;\n"),
        Op::IncY => format!("let t{temp}: int = y; yield; y = t{temp} + 1;\n"),
        Op::LockedIncX => {
            format!("lock(m); let t{temp}: int = x; x = t{temp} + 1; unlock(m);\n")
        }
    }
}

/// Builds a two-worker program from op lists; the assert demands the
/// serial outcome, so any lost update fails it.
fn build_program(ops_a: &[Op], ops_b: &[Op]) -> String {
    let count = |ops: &[Op], f: fn(&Op) -> bool| ops.iter().filter(|o| f(o)).count();
    let is_x = |o: &Op| matches!(o, Op::IncX | Op::LockedIncX);
    let is_y = |o: &Op| matches!(o, Op::IncY);
    let expected_x = count(ops_a, is_x) + count(ops_b, is_x);
    let expected_y = count(ops_a, is_y) + count(ops_b, is_y);
    let body = |ops: &[Op]| -> String {
        ops.iter()
            .enumerate()
            .map(|(i, &op)| op_source(op, i))
            .collect()
    };
    format!(
        "global int x = 0; global int y = 0; mutex m;
         fn wa() {{ {} }}
         fn wb() {{ {} }}
         fn main() {{
             let a: thread = fork wa();
             let b: thread = fork wb();
             join a; join b;
             assert(x == {expected_x} && y == {expected_y}, \"lost update\");
         }}",
        body(ops_a),
        body(ops_b),
    )
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![Just(Op::IncX), Just(Op::IncY), Just(Op::LockedIncX)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Whenever a randomized racy program fails under exploration, the
    /// full pipeline reproduces the failure deterministically.
    #[test]
    fn random_racy_programs_are_reproducible(
        ops_a in proptest::collection::vec(op_strategy(), 1..4),
        ops_b in proptest::collection::vec(op_strategy(), 1..4),
    ) {
        let src = build_program(&ops_a, &ops_b);
        let pipeline = Pipeline::from_source(&src).expect("generated source parses");
        let mut config = PipelineConfig::new(MemModel::Sc);
        config.seed_budget = 400;
        config.stickiness = vec![0.7, 0.3];
        match pipeline.reproduce(&config) {
            Ok(report) => prop_assert!(report.reproduced),
            Err(clap_core::PipelineError::NoFailureFound) => {
                // All-locked op lists (or lucky schedules) never fail —
                // vacuously fine.
            }
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        }
    }

    /// Both solving engines agree on satisfiability, and the validator
    /// accepts both engines' schedules.
    #[test]
    fn solvers_agree_on_random_failures(
        ops_a in proptest::collection::vec(op_strategy(), 1..3),
        ops_b in proptest::collection::vec(op_strategy(), 1..3),
    ) {
        let src = build_program(&ops_a, &ops_b);
        let pipeline = Pipeline::from_source(&src).expect("parses");
        let mut config = PipelineConfig::new(MemModel::Sc);
        config.seed_budget = 400;
        config.stickiness = vec![0.7, 0.3];
        let Ok(recorded) = pipeline.record_failure(&config) else { return Ok(()) };
        let trace = pipeline.symbolic_trace(&recorded).expect("trace");
        let system = ConstraintSystem::build(pipeline.program(), &trace, MemModel::Sc);

        let seq = clap_solver::solve(pipeline.program(), &system, clap_solver::SolverConfig::default());
        let par = clap_parallel::solve_parallel(
            pipeline.program(),
            &system,
            clap_parallel::ParallelConfig::default(),
        );
        let seq_solution = seq.solution().expect("recorded failures are satisfiable");
        prop_assert!(par.schedule().is_some(), "parallel agrees on SAT");
        prop_assert!(validate(pipeline.program(), &system, &seq_solution.schedule).is_ok());
        prop_assert!(validate(pipeline.program(), &system, par.schedule().unwrap()).is_ok());
    }

    /// Soundness of validation: every validator-approved linear extension
    /// replays on the VM and fires the assert (capped enumeration).
    #[test]
    fn every_valid_schedule_replays(
        ops_a in proptest::collection::vec(op_strategy(), 1..3),
        ops_b in proptest::collection::vec(op_strategy(), 1..2),
    ) {
        let src = build_program(&ops_a, &ops_b);
        let pipeline = Pipeline::from_source(&src).expect("parses");
        let mut config = PipelineConfig::new(MemModel::Sc);
        config.seed_budget = 400;
        config.stickiness = vec![0.7, 0.3];
        let Ok(recorded) = pipeline.record_failure(&config) else { return Ok(()) };
        let trace = pipeline.symbolic_trace(&recorded).expect("trace");
        if trace.sap_count() > 18 {
            return Ok(()); // keep enumeration tractable
        }
        let system = ConstraintSystem::build(pipeline.program(), &trace, MemModel::Sc);

        // Enumerate linear extensions of the hard edges, validate each,
        // and replay the first few approved ones.
        let n = trace.sap_count();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &system.hard_edges {
            preds[b.index()].push(a.index());
        }
        let mut approved: Vec<Schedule> = Vec::new();
        let mut placed = vec![false; n];
        let mut acc: Vec<SapId> = Vec::new();
        fn extend(
            n: usize,
            preds: &[Vec<usize>],
            placed: &mut Vec<bool>,
            acc: &mut Vec<SapId>,
            check: &mut dyn FnMut(&[SapId]) -> bool,
        ) -> bool {
            if acc.len() == n {
                return check(acc);
            }
            for x in 0..n {
                if placed[x] || !preds[x].iter().all(|&p| placed[p]) {
                    continue;
                }
                placed[x] = true;
                acc.push(SapId(x as u32));
                let go_on = extend(n, preds, placed, acc, check);
                acc.pop();
                placed[x] = false;
                if !go_on {
                    return false;
                }
            }
            true
        }
        extend(n, &preds, &mut placed, &mut acc, &mut |order| {
            let schedule = Schedule { order: order.to_vec() };
            if validate(pipeline.program(), &system, &schedule).is_ok() {
                approved.push(schedule);
            }
            approved.len() < 5
        });
        prop_assert!(!approved.is_empty(), "the recorded failure admits a schedule");
        for schedule in approved {
            let report = clap_replay::replay(
                pipeline.program(),
                MemModel::Sc,
                pipeline.sharing().shared_spec(),
                &trace,
                &schedule,
                recorded.assert,
            );
            prop_assert!(report.is_ok(), "approved schedule must replay: {report:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// `clap_ir::canonicalize` (parse ∘ unparse) is a fixpoint: the
    /// second round-trip is byte-identical to the first. The service's
    /// content-addressed cache keys on the canonical form, so this is
    /// exactly the property that makes "same program modulo formatting"
    /// a single cache entry.
    #[test]
    fn canonicalization_is_a_fixpoint(
        ops_a in proptest::collection::vec(op_strategy(), 1..4),
        ops_b in proptest::collection::vec(op_strategy(), 1..4),
        seed in 0u64..1_000_000,
    ) {
        let handwritten = build_program(&ops_a, &ops_b);
        let generated = clap_check::ProgramSpec::from_seed(seed).source();
        let channels = clap_check::ChanSpec::from_seed(seed).source();
        let atomics = clap_check::AtomicSpec::from_seed(seed).source();
        for source in [handwritten, generated, channels, atomics] {
            let once = clap_ir::canonicalize(&source).expect("source parses");
            let twice = clap_ir::canonicalize(&once).expect("canonical form parses");
            prop_assert!(once == twice, "canonical form must be stable");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Differential property: programs from the extended generator
    /// (three workers, computed array indices, condvar handoffs) must
    /// never make the pipeline hard-disagree with the bounded
    /// enumeration oracle, under any memory model. This is the
    /// fuzz-scale version of the CI `clap check` smoke step.
    #[test]
    fn generated_programs_diff_clean_against_oracle(seed in 0u64..1_000_000) {
        let spec = clap_check::ProgramSpec::from_seed(seed);
        let config = clap_check::DiffConfig::default()
            .with_models(vec![MemModel::Sc, MemModel::Tso, MemModel::Pso])
            .with_seed_budget(400, vec![0.7, 0.3])
            .with_max_executions(20_000);
        let report = clap_check::diff_source(&spec.source(), &config)
            .expect("generated source parses");
        prop_assert!(report.ok(), "seed {seed}:\n{}", report.summary());
    }

    /// Same differential property for the channel/actor generator:
    /// bounded channels (caps 0–3), up to three workers mixing
    /// send/recv/try_send/try_recv/close, and an optional actor leg fed
    /// over its mailbox. Main always closes the channel, so every
    /// generated program terminates on every interleaving and races
    /// surface as assert failures the pipeline must reproduce (or
    /// soft-verdict — never hard-disagree with the oracle).
    #[test]
    fn generated_channel_programs_diff_clean_against_oracle(seed in 0u64..1_000_000) {
        let spec = clap_check::ChanSpec::from_seed(seed);
        let config = clap_check::DiffConfig::default()
            .with_models(vec![MemModel::Sc, MemModel::Tso, MemModel::Pso])
            .with_seed_budget(400, vec![0.7, 0.3])
            .with_max_executions(20_000);
        let report = clap_check::diff_source(&spec.source(), &config)
            .expect("generated channel source parses");
        prop_assert!(report.ok(), "chan seed {seed}:\n{}", report.summary());
    }

    /// Same differential property for the C11-atomics generator, under
    /// all four memory models: straight-line workers mixing racy
    /// load/store increments, fetch_adds, CAS races, and weak publish /
    /// consume pairs at every ordering. Under SC/TSO/PSO atomics act as
    /// seq_cst fences; under C11 the oracle additionally enumerates the
    /// per-location drain interleavings — the pipeline must never
    /// hard-disagree on either side.
    #[test]
    fn generated_atomic_programs_diff_clean_against_oracle(seed in 0u64..1_000_000) {
        let spec = clap_check::AtomicSpec::from_seed(seed);
        let config = clap_check::DiffConfig::default()
            .with_models(vec![MemModel::Sc, MemModel::Tso, MemModel::Pso, MemModel::C11])
            .with_seed_budget(400, vec![0.7, 0.3])
            .with_max_executions(20_000);
        let report = clap_check::diff_source(&spec.source(), &config)
            .expect("generated atomic source parses");
        prop_assert!(report.ok(), "atomic seed {seed}:\n{}", report.summary());
    }
}

/// The shipped example corpus is parseable and canonically stable — the
/// precondition for the CI service-smoke step's cache-hit assertion
/// (identical resubmissions must fingerprint identically).
#[test]
fn example_corpus_canonicalizes() {
    let mut checked = 0;
    for entry in std::fs::read_dir("examples").expect("examples dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "clap") {
            let source = std::fs::read_to_string(&path).expect("read example");
            let once = clap_ir::canonicalize(&source).expect("example parses");
            let twice = clap_ir::canonicalize(&once).expect("canonical form parses");
            assert_eq!(once, twice, "{} is not canonically stable", path.display());
            checked += 1;
        }
    }
    assert!(
        checked >= 7,
        "expected the channel examples alongside the originals"
    );
}
