//! Regression corpus: every program under `tests/corpus/` has its oracle
//! verdict pinned in `tests/corpus/verdicts.snap` — failing-schedule
//! count, search status, and one canonical schedule string, per memory
//! model. Any change to VM semantics, the sharing analysis, or the
//! enumerator that shifts a verdict shows up as a snapshot diff here
//! before it can silently skew the differential checker.
//!
//! Regenerate the snapshots after an *intended* semantic change with:
//!
//! ```text
//! CLAP_BLESS=1 cargo test --test corpus
//! ```

use clap_check::{enumerate, shrink_source, DiffConfig, OracleConfig, Verdict};
use clap_vm::MemModel;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Corpus membership is explicit so a stray file cannot silently widen
/// the snapshot, and the snapshot order is stable.
const PROGRAMS: &[&str] = &[
    "actor_deadlock",
    "array_index",
    "atomic_shrunk_min",
    "cas_aba",
    "chan_rendezvous",
    "chan_shrunk_min",
    "cond_handoff",
    "lost_update",
    "mp_reorder",
    "pfscan",
    "sb_litmus",
    "seqlock_torn_read",
    "shrunk_min",
    "three_workers",
];

const MODELS: &[MemModel] = &[MemModel::Sc, MemModel::Tso, MemModel::Pso, MemModel::C11];

/// Deterministic, debug-friendly oracle bounds for the snapshot: large
/// enough that every small program is complete within the preemption
/// bound, small enough that pfscan's TSO/PSO drain explosion truncates
/// quickly instead of burning CI minutes.
fn snapshot_config(model: MemModel) -> OracleConfig {
    OracleConfig::new(model).with_max_executions(20_000)
}

fn corpus_source(name: &str) -> String {
    let path = format!("tests/corpus/{name}.clap");
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn bless() -> bool {
    std::env::var_os("CLAP_BLESS").is_some()
}

#[test]
fn corpus_files_and_program_list_agree() {
    let mut on_disk: Vec<String> = fs::read_dir("tests/corpus")
        .expect("corpus dir")
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let p = e.path();
            (p.extension()? == "clap")
                .then(|| p.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    on_disk.sort();
    assert_eq!(
        on_disk, PROGRAMS,
        "keep PROGRAMS in sync with tests/corpus/"
    );
}

#[test]
fn corpus_verdicts_match_snapshot() {
    let mut actual = String::new();
    for name in PROGRAMS {
        let program =
            clap_ir::parse(&corpus_source(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        for &model in MODELS {
            let r = enumerate(&program, &snapshot_config(model));
            let status = if r.exhaustive() {
                "exhaustive"
            } else if r.complete_within_bound() {
                "complete"
            } else {
                "truncated"
            };
            let canonical = r.canonical_letters().unwrap_or("-");
            let _ = writeln!(
                actual,
                "{name} {model:?} failing={} {status} canonical={canonical}",
                r.failing.len(),
            );
        }
    }
    let path = Path::new("tests/corpus/verdicts.snap");
    if bless() {
        fs::write(path, &actual).expect("write snapshot");
        return;
    }
    let expected = fs::read_to_string(path)
        .expect("tests/corpus/verdicts.snap missing — run CLAP_BLESS=1 cargo test --test corpus");
    assert_eq!(
        actual, expected,
        "oracle verdicts drifted from the snapshot; if the change is \
         intended, regenerate with CLAP_BLESS=1 cargo test --test corpus"
    );
}

/// The committed `shrunk_min.clap` really is what the shrinker produces
/// from its noisy progenitor: a racy core with every distractor (an
/// innocent helper thread, an unused global, dead statements) deleted.
#[test]
fn shrunk_min_is_the_shrinker_fixpoint() {
    let noisy = "global int x = 0; global int unused = 0; mutex m;
         fn noise() { lock(m); unlock(m); }
         fn w() { let v: int = x; yield; x = v + 1; }
         fn main() {
             let n: thread = fork noise();
             let a: thread = fork w();
             let b: thread = fork w();
             join n; join a; join b;
             let pad: int = 7;
             assert(x == 2, \"lost\");
         }";
    // Keep programs whose SC oracle still shows a *concurrency* failure
    // (some schedules fail, some pass).
    let pred = |s: &str| {
        let p = clap_ir::parse(s).expect("candidates parse");
        let r = enumerate(&p, &snapshot_config(MemModel::Sc));
        !r.failing.is_empty() && r.completed > 0
    };
    let shrunk = shrink_source(noisy, pred).expect("noisy program fails");
    let path = Path::new("tests/corpus/shrunk_min.clap");
    if bless() {
        fs::write(path, &shrunk).expect("write shrunk corpus program");
        return;
    }
    let committed = corpus_source("shrunk_min");
    assert_eq!(
        shrunk, committed,
        "shrinker output drifted from tests/corpus/shrunk_min.clap; \
         regenerate with CLAP_BLESS=1 cargo test --test corpus"
    );
}

/// The committed `chan_shrunk_min.clap` is the shrinker fixpoint of a
/// noisy lost-close program: the unused channel, the spectator worker,
/// and the dead statements must all be deleted (exercising the chan-decl
/// deletion candidates), leaving only the load-bearing close race.
#[test]
fn chan_shrunk_min_is_the_shrinker_fixpoint() {
    let noisy = "global int sum = 0; global int unused = 0; mutex m;
         chan ch(1); chan spare(2);
         fn noise() { lock(m); unlock(m); }
         fn producer() { send(ch, 5); send(ch, 7); }
         fn consumer() {
             let a: int = recv(ch);
             let b: int = recv(ch);
             sum = a + b;
         }
         fn main() {
             let n: thread = fork noise();
             let p: thread = fork producer();
             let c: thread = fork consumer();
             close(ch);
             join n; join p; join c;
             let pad: int = 7;
             assert(sum == 12, \"lost send\");
         }";
    let pred = |s: &str| {
        let p = clap_ir::parse(s).expect("candidates parse");
        let r = enumerate(&p, &snapshot_config(MemModel::Sc));
        !r.failing.is_empty() && r.completed > 0
    };
    let shrunk = shrink_source(noisy, pred).expect("noisy channel program fails");
    assert!(
        !shrunk.contains("spare") && !shrunk.contains("noise") && !shrunk.contains("unused"),
        "distractors must be deleted:\n{shrunk}"
    );
    let path = Path::new("tests/corpus/chan_shrunk_min.clap");
    if bless() {
        fs::write(path, &shrunk).expect("write shrunk corpus program");
        return;
    }
    let committed = corpus_source("chan_shrunk_min");
    assert_eq!(
        shrunk, committed,
        "shrinker output drifted from tests/corpus/chan_shrunk_min.clap; \
         regenerate with CLAP_BLESS=1 cargo test --test corpus"
    );
}

/// The committed `atomic_shrunk_min.clap` is the shrinker fixpoint of a
/// noisy relaxed message-passing program: the spare atomic cell
/// (exercising the atomic-decl deletion candidates), the spectator
/// worker, and the dead statements must all be deleted, leaving only the
/// load-bearing weak publish.
#[test]
fn atomic_shrunk_min_is_the_shrinker_fixpoint() {
    let noisy = "atomic int flag = 0; atomic int data = 0; atomic int spare = 0;
         global int seen = -1; global int unused = 0; mutex m;
         fn noise() { lock(m); unlock(m); }
         fn writer() { store(data, 1, relaxed); store(flag, 1, relaxed); }
         fn reader() {
             let f: int = load(flag, acquire);
             if (f == 1) { let d: int = load(data, acquire); seen = d; }
         }
         fn main() {
             let n: thread = fork noise();
             let w: thread = fork writer();
             let r: thread = fork reader();
             join n; join w; join r;
             let pad: int = 7;
             assert(seen != 0, \"MP relaxation\");
         }";
    // Keep programs whose C11 oracle still shows a *weak-memory*
    // failure (some drain schedules fail, some pass).
    let pred = |s: &str| {
        let p = clap_ir::parse(s).expect("candidates parse");
        let r = enumerate(&p, &snapshot_config(MemModel::C11));
        !r.failing.is_empty() && r.completed > 0
    };
    let shrunk = shrink_source(noisy, pred).expect("noisy atomic program fails");
    assert!(
        !shrunk.contains("spare") && !shrunk.contains("noise") && !shrunk.contains("unused"),
        "distractors must be deleted:\n{shrunk}"
    );
    assert!(
        shrunk.contains("relaxed"),
        "the weak publish is load-bearing:\n{shrunk}"
    );
    let path = Path::new("tests/corpus/atomic_shrunk_min.clap");
    if bless() {
        fs::write(path, &shrunk).expect("write shrunk corpus program");
        return;
    }
    let committed = corpus_source("atomic_shrunk_min");
    assert_eq!(
        shrunk, committed,
        "shrinker output drifted from tests/corpus/atomic_shrunk_min.clap; \
         regenerate with CLAP_BLESS=1 cargo test --test corpus"
    );
}

/// Differential agreement on the corpus: the pipeline and the oracle
/// must not hard-disagree on any corpus program under any memory model.
/// (pfscan is checked under SC only here — its TSO/PSO oracle runs
/// truncate, and the full-budget version runs in the CI smoke step.)
#[test]
fn corpus_diffs_clean_against_pipeline() {
    for name in PROGRAMS {
        let models: Vec<MemModel> = if *name == "pfscan" {
            vec![MemModel::Sc]
        } else {
            MODELS.to_vec()
        };
        let config = DiffConfig::default()
            .with_models(models)
            .with_seed_budget(2_000, vec![0.9, 0.5, 0.3])
            .with_max_executions(20_000);
        let report = clap_check::diff_source(&corpus_source(name), &config)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(report.ok(), "{name}:\n{}", report.summary());
        // Every failing corpus program must actually be reproduced by the
        // pipeline under SC — a record miss here would make the corpus
        // toothless.
        if *name != "mp_reorder" && *name != "sb_litmus" {
            let sc = &report.outcomes[0];
            assert!(
                matches!(sc.verdict, Verdict::Sound { .. }) || sc.oracle.failing.is_empty(),
                "{name}: pipeline failed to reproduce under SC:\n{}",
                report.summary()
            );
        }
    }
}
