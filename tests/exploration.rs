//! The record-phase exploration engine: a parallel sweep must be
//! indistinguishable from the sequential one (same selected artifact,
//! byte for byte), and the early stop must neither hang nor change the
//! selection even when failures are abundant.

use clap_core::{ExploreCutover, Pipeline, PipelineConfig, RecordedFailure};
use clap_vm::MemModel;
use std::time::{Duration, Instant};

const LOST_UPDATE: &str = "global int x = 0;
     fn w() { let v: int = x; yield; x = v + 1; }
     fn main() { let a: thread = fork w(); let b: thread = fork w();
                 join a; join b; assert(x == 2, \"lost\"); }";

/// Records with 1 worker and with `workers`, expecting both to succeed.
fn record_pair(
    pipeline: &Pipeline,
    config: &PipelineConfig,
    workers: usize,
) -> (RecordedFailure, RecordedFailure) {
    let sequential = pipeline
        .record_failure(&config.clone().with_explore_workers(1))
        .expect("sequential sweep finds the failure");
    let parallel = pipeline
        .record_failure(&config.clone().with_explore_workers(workers))
        .expect("parallel sweep finds the failure");
    (sequential, parallel)
}

fn assert_identical(sequential: &RecordedFailure, parallel: &RecordedFailure) {
    assert_eq!(sequential.seed, parallel.seed, "same selected seed");
    assert_eq!(
        sequential.stickiness, parallel.stickiness,
        "same stickiness level"
    );
    assert_eq!(sequential.stats.saps, parallel.stats.saps, "same SAP count");
    assert_eq!(sequential.log, parallel.log, "byte-identical path logs");
    assert_eq!(sequential.assert, parallel.assert, "same assert site");
}

#[test]
fn parallel_exploration_matches_sequential_sc() {
    let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
    let config = PipelineConfig::new(MemModel::Sc);
    let (sequential, parallel) = record_pair(&pipeline, &config, 4);
    assert_identical(&sequential, &parallel);
}

#[test]
fn small_budgets_cut_over_to_sequential_without_changing_selection() {
    // Under the default adaptive cutover, small budgets run on the caller
    // thread even when a worker pool is requested — the calibration probe
    // sees a sweep too short to amortize pool startup. The selected
    // artifact must be byte-identical whichever path the planner picks.
    let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
    for budget in [64, 4096] {
        let mut config = PipelineConfig::new(MemModel::Sc);
        config.seed_budget = budget;
        let (sequential, parallel) = record_pair(&pipeline, &config, 8);
        assert_identical(&sequential, &parallel);
    }
}

#[test]
fn determinism_pinned_at_fixed_cutover_boundary() {
    // seed_budget ∈ {cutover−1, cutover, cutover+1} with an explicit
    // Fixed(64) policy: budget 63 stays sequential even at 8 workers,
    // 64 and 65 go to the pool. The artifact must be byte-identical on
    // every side of the boundary.
    let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
    for budget in [63, 64, 65] {
        let mut config =
            PipelineConfig::new(MemModel::Sc).with_explore_cutover(ExploreCutover::Fixed(64));
        config.seed_budget = budget;
        let (sequential, parallel) = record_pair(&pipeline, &config, 8);
        assert_identical(&sequential, &parallel);
    }
}

#[test]
fn forced_pool_matches_sequential_with_chunked_claiming() {
    // Fixed(0) forces the pool on regardless of host cores or probe
    // estimates, so this exercises the chunked claim + watermark early
    // stop even where the adaptive policy would stay sequential.
    let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
    let mut config =
        PipelineConfig::new(MemModel::Sc).with_explore_cutover(ExploreCutover::Fixed(0));
    config.seed_budget = 5_000;
    let (sequential, parallel) = record_pair(&pipeline, &config, 4);
    assert_identical(&sequential, &parallel);
}

#[test]
fn pool_threads_spawn_at_most_once_per_sweep() {
    // A correct program: every stickiness level sweeps its full budget,
    // so a pool respawned per level would report spawned = levels ×
    // workers. The persistent pool must report exactly `workers`.
    let pipeline = Pipeline::from_source(
        "global int x = 0;
         mutex m;
         fn w() { lock(m); let v: int = x; x = v + 1; unlock(m); }
         fn main() { let a: thread = fork w(); let b: thread = fork w();
                     join a; join b; assert(x == 2, \"never fails\"); }",
    )
    .unwrap();
    let mut config = PipelineConfig::new(MemModel::Sc)
        .with_explore_workers(3)
        .with_explore_cutover(ExploreCutover::Fixed(0)); // force the pool on
    config.seed_budget = 200;
    config.stickiness = vec![0.9, 0.7, 0.5];

    let _l = clap_obs::test_lock();
    clap_obs::reset();
    clap_obs::enable();
    let result = pipeline.record_failure(&config);
    clap_obs::disable();
    let snap = clap_obs::snapshot();
    assert!(result.is_err(), "the program is correct; no failure exists");
    assert_eq!(
        snap.counters.get("explore.levels"),
        Some(&3),
        "all three stickiness levels swept"
    );
    assert_eq!(
        snap.gauges.get("explore.pool.spawned"),
        Some(&3),
        "worker threads spawned once per sweep, not once per level"
    );
}

#[test]
fn parallel_exploration_matches_sequential_tso() {
    // A store-buffering workload: the failing interleavings involve drain
    // actions, a different action mix than the SC test exercises.
    let workload = clap_workloads::by_name("dekker").expect("dekker exists");
    assert_eq!(workload.model, MemModel::Tso);
    let pipeline = Pipeline::new(workload.program());
    let mut config = PipelineConfig::new(workload.model);
    config.stickiness = workload.stickiness.to_vec();
    config.seed_budget = workload.seed_budget;
    let (sequential, parallel) = record_pair(&pipeline, &config, 4);
    assert_identical(&sequential, &parallel);
}

#[test]
fn full_reproduce_is_worker_count_invariant() {
    // The end-to-end acceptance shape: identical ReproductionReports at
    // workers=1 and workers=4.
    let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
    let config = PipelineConfig::new(MemModel::Sc);
    let one = pipeline
        .reproduce(&config.clone().with_explore_workers(1))
        .expect("reproduce at 1 worker");
    let four = pipeline
        .reproduce(&config.clone().with_explore_workers(4))
        .expect("reproduce at 4 workers");
    assert!(one.reproduced && four.reproduced);
    assert_eq!(one.seed, four.seed);
    assert_eq!(one.saps, four.saps);
    assert_eq!(one.log_bytes, four.log_bytes);
    assert_eq!(one.schedule.order, four.schedule.order);
}

#[test]
fn early_stop_terminates_abundant_failure_sweep() {
    // Every interleaving of this program fails, so without the early stop
    // a million-seed budget would grind through every seed — and a
    // cancellation bug would strand workers forever. The sweep must
    // return promptly and still pick the same candidate as a sequential
    // sweep (which stops at the same 25-failure cutoff).
    let pipeline = Pipeline::from_source(
        "global int x = 0;
         fn w() { x = 1; }
         fn main() { let a: thread = fork w(); join a; assert(x == 2, \"always\"); }",
    )
    .unwrap();
    let mut config = PipelineConfig::new(MemModel::Sc);
    config.seed_budget = 1_000_000;

    let t0 = Instant::now();
    let parallel = pipeline
        .record_failure(&config.clone().with_explore_workers(4))
        .expect("failure is everywhere");
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(60),
        "early stop must fire long before the {}-seed budget ({elapsed:?})",
        config.seed_budget
    );

    let sequential = pipeline
        .record_failure(&config.clone().with_explore_workers(1))
        .expect("failure is everywhere");
    assert_identical(&sequential, &parallel);
}
