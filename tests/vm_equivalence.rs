//! Differential equivalence suite: the flat-bytecode backend must be
//! observationally indistinguishable from the tree-walk interpreter.
//!
//! Every program in `examples/` and `tests/corpus/`, plus 200 programs
//! from the `clap-check` property generator, runs through both backends
//! under SC, TSO, and PSO. For each seeded run the two backends must
//! produce identical outcomes, scheduler-visible action schedules,
//! monitor event streams (every `Monitor` callback, in order), visible-
//! event fingerprints, execution statistics, and final global memory.
//! On top of the single-run checks, the `clap-check` oracle enumerates
//! the bounded schedule space of the smaller programs under both
//! backends and must report identical search trees.
//!
//! Any divergence here means the bytecode compiler changed semantics,
//! not just speed — exactly the regression this suite exists to catch.

use clap_check::{
    enumerate, AtomicSpec, ChanSpec, Fingerprint, FingerprintMonitor, OracleConfig, ProgramSpec,
};
use clap_ir::{GlobalId, Program};
use clap_vm::{
    AccessEvent, Action, Backend, FnScheduler, Lineage, MemModel, Monitor, RandomScheduler,
    Scheduler, SyncEvent, ThreadId, Vm,
};
use std::fs;

const MODELS: &[MemModel] = &[MemModel::Sc, MemModel::Tso, MemModel::Pso, MemModel::C11];

/// Seeds swept per (program, model, backend) pair in the single-run
/// comparison. Random-scheduler seeds double as stickiness sweeps via
/// `RandomScheduler::with_stickiness`.
const RUN_SEEDS: u64 = 5;

/// Property-generator programs in the differential sweep (the
/// acceptance floor for this suite).
const GENERATED_PROGRAMS: u64 = 200;

/// Generated programs that additionally go through full oracle
/// enumeration under both backends (enumeration is ~100× the cost of a
/// seeded run, so the full 200 would dominate the suite's runtime).
const GENERATED_ORACLE_PROGRAMS: u64 = 40;

/// Oracle cap: big enough that the small generated programs complete
/// within the preemption bound, small enough to keep the suite quick.
const ORACLE_EXECUTIONS: u64 = 4_000;

fn disk_programs(dir: &str) -> Vec<(String, String)> {
    let mut programs: Vec<(String, String)> = fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {dir}: {e}"))
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let p = e.path();
            (p.extension()? == "clap").then(|| {
                let name = format!("{dir}/{}", p.file_name().unwrap().to_string_lossy());
                let source = fs::read_to_string(&p).expect("readable corpus file");
                (name, source)
            })
        })
        .collect();
    programs.sort();
    assert!(!programs.is_empty(), "{dir} has no .clap programs");
    programs
}

/// Every monitor callback, rendered to a string in arrival order. The
/// formatting keeps full payloads (values, addresses, lineages) so a
/// backend that reorders commits or drops an edge cannot slip through.
#[derive(Default)]
struct EventLog {
    events: Vec<String>,
    fingerprints: FingerprintMonitor,
}

impl Monitor for EventLog {
    fn on_thread_start(&mut self, thread: ThreadId, lineage: &Lineage, func: clap_ir::FuncId) {
        self.events
            .push(format!("start {thread} {lineage:?} {func}"));
        self.fingerprints.on_thread_start(thread, lineage, func);
    }

    fn on_thread_exit(&mut self, thread: ThreadId) {
        self.events.push(format!("exit {thread}"));
    }

    fn on_func_enter(&mut self, thread: ThreadId, func: clap_ir::FuncId) {
        self.events.push(format!("enter {thread} {func}"));
    }

    fn on_func_exit(&mut self, thread: ThreadId, func: clap_ir::FuncId) {
        self.events.push(format!("leave {thread} {func}"));
    }

    fn on_edge(
        &mut self,
        thread: ThreadId,
        func: clap_ir::FuncId,
        from: clap_ir::BlockId,
        to: clap_ir::BlockId,
    ) {
        self.events
            .push(format!("edge {thread} {func} {from}->{to}"));
    }

    fn on_access(&mut self, thread: ThreadId, event: &AccessEvent) {
        self.events.push(format!("access {thread} {event:?}"));
        self.fingerprints.on_access(thread, event);
    }

    fn on_commit(&mut self, thread: ThreadId, addr: clap_vm::Addr, value: i64) {
        self.events
            .push(format!("commit {thread} {addr:?} {value}"));
        self.fingerprints.on_commit(thread, addr, value);
    }

    fn on_sync(&mut self, thread: ThreadId, event: &SyncEvent) {
        self.events.push(format!("sync {thread} {event:?}"));
        self.fingerprints.on_sync(thread, event);
    }

    fn on_assert(&mut self, thread: ThreadId, id: clap_ir::AssertId, passed: bool) {
        self.events.push(format!("assert {thread} {id} {passed}"));
    }
}

/// Everything observable about one seeded run.
#[derive(PartialEq)]
struct Observed {
    outcome: String,
    stats: clap_vm::ExecStats,
    schedule: Vec<Action>,
    events: Vec<String>,
    fingerprint: Fingerprint,
    globals: Vec<i64>,
}

fn observe(vm: &mut Vm<'_>, program: &Program, seed: u64) -> Observed {
    vm.reset();
    let mut inner = RandomScheduler::with_stickiness(seed, 0.1 + 0.2 * (seed % 4) as f64);
    let mut schedule = Vec::new();
    let mut monitor = EventLog::default();
    let outcome = {
        let mut sched = FnScheduler(|vm: &Vm<'_>, actions: &[Action]| {
            let i = inner.pick(vm, actions);
            schedule.push(actions[i]);
            i
        });
        vm.run(&mut sched, &mut monitor)
    };
    let assert = match outcome {
        clap_vm::Outcome::AssertFailed { assert, .. } => Some(assert),
        _ => None,
    };
    let globals = (0..program.globals.len())
        .flat_map(|g| {
            let global = GlobalId(g as u32);
            (0..program.globals[g].cells()).map(move |off| (global, off))
        })
        .map(|(global, off)| vm.read_global(global, off))
        .collect();
    Observed {
        outcome: format!("{outcome:?}"),
        stats: *vm.stats(),
        schedule,
        events: monitor.events,
        fingerprint: monitor.fingerprints.fingerprint(assert),
        globals,
    }
}

/// Asserts field-by-field so a divergence names what differs instead of
/// dumping two multi-kilobyte structs.
fn assert_equivalent(label: &str, tree: &Observed, bytecode: &Observed) {
    assert_eq!(tree.outcome, bytecode.outcome, "{label}: outcome");
    assert_eq!(tree.schedule, bytecode.schedule, "{label}: schedule");
    assert_eq!(tree.events, bytecode.events, "{label}: event stream");
    assert_eq!(
        tree.fingerprint, bytecode.fingerprint,
        "{label}: fingerprint"
    );
    assert_eq!(tree.stats, bytecode.stats, "{label}: stats");
    assert_eq!(tree.globals, bytecode.globals, "{label}: final globals");
}

fn check_runs(name: &str, source: &str) {
    let program = clap_ir::parse(source).unwrap_or_else(|e| panic!("{name}: {e}"));
    let shared = clap_analysis::analyze(&program).shared_spec();
    for &model in MODELS {
        let mut tree_vm = Vm::with_backend(&program, model, shared.clone(), Backend::Tree);
        let mut bc_vm = Vm::with_backend(&program, model, shared.clone(), Backend::Bytecode);
        tree_vm.set_step_limit(200_000);
        bc_vm.set_step_limit(200_000);
        for seed in 0..RUN_SEEDS {
            let tree = observe(&mut tree_vm, &program, seed);
            let bytecode = observe(&mut bc_vm, &program, seed);
            let label = format!("{name} {model:?} seed {seed}");
            assert_equivalent(&label, &tree, &bytecode);
        }
    }
}

/// Renders the parts of an [`clap_check::OracleReport`] that identify
/// the search tree; the two backends must agree on all of it.
fn oracle_summary(program: &Program, model: MemModel, backend: Backend) -> String {
    let config = OracleConfig::new(model)
        .with_max_executions(ORACLE_EXECUTIONS)
        .with_backend(backend);
    let report = enumerate(program, &config);
    let mut out = format!(
        "executions={} completed={} deadlocks={} faults={} prunes={} truncated={}\n",
        report.executions,
        report.completed,
        report.deadlocks,
        report.faults,
        report.bound_prunes,
        report.truncated,
    );
    for failing in &report.failing {
        out.push_str(&format!(
            "fail assert={} preemptions={} letters={} choices={:?} fp={:?}\n",
            failing.assert,
            failing.preemptions,
            failing.letters,
            failing.choices,
            failing.fingerprint,
        ));
    }
    out
}

fn check_oracle(name: &str, source: &str) {
    let program = clap_ir::parse(source).unwrap_or_else(|e| panic!("{name}: {e}"));
    for &model in MODELS {
        let tree = oracle_summary(&program, model, Backend::Tree);
        let bytecode = oracle_summary(&program, model, Backend::Bytecode);
        assert_eq!(tree, bytecode, "{name} {model:?}: oracle reports differ");
    }
}

#[test]
fn examples_agree_across_backends() {
    for (name, source) in disk_programs("examples") {
        check_runs(&name, &source);
        check_oracle(&name, &source);
    }
}

#[test]
fn corpus_agrees_across_backends() {
    for (name, source) in disk_programs("tests/corpus") {
        check_runs(&name, &source);
    }
}

#[test]
fn corpus_oracle_reports_agree_across_backends() {
    for (name, source) in disk_programs("tests/corpus") {
        check_oracle(&name, &source);
    }
}

#[test]
fn generated_programs_agree_across_backends() {
    for seed in 0..GENERATED_PROGRAMS {
        let source = ProgramSpec::from_seed(seed).source();
        check_runs(&format!("gen#{seed}"), &source);
    }
}

#[test]
fn generated_oracle_reports_agree_across_backends() {
    for seed in 0..GENERATED_ORACLE_PROGRAMS {
        let source = ProgramSpec::from_seed(seed).source();
        check_oracle(&format!("gen#{seed}"), &source);
    }
}

/// Channel/actor programs exercise a disjoint VM surface — bounded
/// queues, rendezvous blocking, close semantics, actor mailboxes — so
/// they get their own sweep at the same acceptance floor as the shared-
/// memory generator. (The channel examples and corpus programs are
/// already covered by the disk-program sweeps above.)
#[test]
fn generated_channel_programs_agree_across_backends() {
    for seed in 0..GENERATED_PROGRAMS {
        let source = ChanSpec::from_seed(seed).source();
        check_runs(&format!("chan#{seed}"), &source);
    }
}

#[test]
fn generated_channel_oracle_reports_agree_across_backends() {
    for seed in 0..GENERATED_ORACLE_PROGRAMS {
        let source = ChanSpec::from_seed(seed).source();
        check_oracle(&format!("chan#{seed}"), &source);
    }
}

/// Atomic programs exercise the fourth memory-model axis: ordering-
/// annotated loads/stores/RMWs/CASes, the C11 per-location store
/// buffers, and their drain actions. Both backends must agree on every
/// weak behavior — including the drain schedules themselves, which show
/// up in the recorded action streams.
#[test]
fn generated_atomic_programs_agree_across_backends() {
    for seed in 0..GENERATED_PROGRAMS {
        let source = AtomicSpec::from_seed(seed).source();
        check_runs(&format!("atomic#{seed}"), &source);
    }
}

#[test]
fn generated_atomic_oracle_reports_agree_across_backends() {
    for seed in 0..GENERATED_ORACLE_PROGRAMS {
        let source = AtomicSpec::from_seed(seed).source();
        check_oracle(&format!("atomic#{seed}"), &source);
    }
}
