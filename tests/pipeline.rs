//! Cross-crate integration: the full CLAP pipeline (record → decode →
//! symex → constrain → solve → replay) over the whole evaluation suite.

use clap_core::{AutoConfig, EngineKind, Pipeline, PipelineConfig, SolverChoice};
use clap_parallel::ParallelConfig;
use clap_solver::SolverConfig;
use std::time::Duration;

fn config_for(workload: &clap_workloads::Workload) -> PipelineConfig {
    let mut config = PipelineConfig::new(workload.model);
    config.stickiness = workload.stickiness.to_vec();
    config.seed_budget = workload.seed_budget;
    config.solver = SolverChoice::Sequential(SolverConfig {
        timeout: Some(Duration::from_secs(120)),
        max_decisions: 0,
    });
    config
}

/// Every workload of the paper's Table 1 reproduces end to end with the
/// sequential solver.
#[test]
fn all_workloads_reproduce_sequentially() {
    for workload in clap_workloads::all() {
        let pipeline = Pipeline::new(workload.program());
        let report = pipeline
            .reproduce(&config_for(&workload))
            .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
        assert!(
            report.reproduced,
            "{} must replay to the same failure",
            workload.name
        );
        assert!(report.constraints.total_clauses() > 0);
        assert!(report.log_bytes > 0);
    }
}

/// The lock-free workload family reproduces end to end under the C11
/// model: the per-location drain encoding must admit the recorded
/// weak-memory failure, and the replayer must place the buffered atomic
/// stores at their solved drain positions to fire the same assert.
#[test]
fn lockfree_workloads_reproduce_under_c11() {
    for workload in clap_workloads::lockfree() {
        let pipeline = Pipeline::new(workload.program());
        let report = pipeline
            .reproduce(&config_for(&workload))
            .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
        assert!(
            report.reproduced,
            "{} must replay to the same failure under C11",
            workload.name
        );
        assert!(report.constraints.total_clauses() > 0);
    }
}

/// Regression: a failing assert *beyond the recorded trace's horizon*
/// must not derail the replay. In this shape (minimized by the checker's
/// shrinker from atomic-fuzz seed 134), the recorded run fails w1's
/// assert while w0 sits between its last SAP and its own copy of the
/// same assert. That trailing assert was never executed, so F_path does
/// not pin its operand — the solver may assign a value that flips it,
/// and a replayer that free-runs asserts fires the wrong one first. The
/// scheduler must hold it and reach the recorded failure.
#[test]
fn trailing_assert_beyond_trace_horizon_does_not_derail_replay() {
    let src = r#"
        atomic int f;
        atomic int data;
        atomic int flag;
        fn w0() {
            let f0: int = load(flag, acquire);
            if ((f0 == 1)) {
                let d0: int = load(data, acquire);
                assert((d0 == 7), "published data visible");
            }
        }
        fn w1() {
            let f0: int = load(flag, acquire);
            if ((f0 == 1)) {
                let d0: int = load(data, acquire);
                assert((d0 == 7), "published data visible");
            }
            store(data, 7, relaxed);
        }
        fn w2() {
            store(data, 7, relaxed);
            store(flag, 1, relaxed);
            let t1: int = cas(f, 0, 1, seq_cst);
        }
        fn main() {
            let h0: thread = fork w0();
            let h1: thread = fork w1();
            let h2: thread = fork w2();
            join h0;
        }
    "#;
    let mut config = PipelineConfig::new(clap_vm::MemModel::C11);
    config.seed_budget = 2000;
    config.stickiness = vec![0.9, 0.7, 0.5, 0.3];
    config.solver = SolverChoice::Auto(AutoConfig::default());
    let pipeline = Pipeline::new(clap_ir::parse(src).expect("parse"));
    let recorded = pipeline.record_failure(&config).expect("record");
    let report = pipeline
        .reproduce_from(&config, &recorded)
        .expect("replay must reach the recorded assert");
    assert!(report.reproduced);
}

/// A representative subset also reproduces with the parallel engine, at
/// small preemption counts.
#[test]
fn parallel_engine_reproduces_with_few_preemptions() {
    for name in ["sim_race", "aget", "swarm", "pbzip2", "dekker", "peterson"] {
        let workload = clap_workloads::by_name(name).expect("workload exists");
        let pipeline = Pipeline::new(workload.program());
        let mut config = config_for(&workload);
        config.solver = SolverChoice::Parallel(ParallelConfig {
            timeout: Some(Duration::from_secs(120)),
            ..ParallelConfig::default()
        });
        let report = pipeline
            .reproduce(&config)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(report.reproduced, "{name}");
        assert!(
            report.context_switches <= 3,
            "{name}: parallel schedules stay within the paper's ≤3 preemptions, got {}",
            report.context_switches
        );
    }
}

/// pfscan's recorded trace needs more preemption points than the parallel
/// engine's small bounds reach, so the bare engine exhausts its ladder
/// rungs without a candidate. The portfolio must classify that correctly
/// (exhausted, not unsat), fall back to the sequential solver, and still
/// reproduce end to end — naming the winning engine in the report.
#[test]
fn auto_portfolio_reproduces_pfscan() {
    let workload = clap_workloads::by_name("pfscan").expect("pfscan exists");
    let pipeline = Pipeline::new(workload.program());
    let mut config = config_for(&workload);
    config.solver =
        SolverChoice::Auto(AutoConfig::default().with_solve_timeout(Duration::from_secs(120)));
    let report = pipeline.reproduce(&config).expect("auto reproduces pfscan");
    assert!(report.reproduced);
    assert_eq!(
        report.portfolio.winner,
        Some(EngineKind::Sequential),
        "the small-bound ladder cannot realize pfscan's schedule; the \
         sequential fallback must win: {:?}",
        report.portfolio
    );
    assert!(
        report.portfolio.attempts.len() > 1,
        "the ladder attempts must be on record: {:?}",
        report.portfolio
    );
}

/// The recorded artifact (path log + crash context) is self-contained:
/// decoding + symex + solving twice from the same recording gives
/// schedules with identical witnesses.
#[test]
fn offline_phase_is_deterministic() {
    let workload = clap_workloads::by_name("pfscan").expect("pfscan exists");
    let pipeline = Pipeline::new(workload.program());
    let config = config_for(&workload);
    let recorded = pipeline.record_failure(&config).expect("failure found");
    let a = pipeline
        .reproduce_from(&config, &recorded)
        .expect("first solve");
    let b = pipeline
        .reproduce_from(&config, &recorded)
        .expect("second solve");
    assert_eq!(
        a.schedule.order, b.schedule.order,
        "solver is deterministic"
    );
    assert_eq!(a.witness.assignment, b.witness.assignment);
}

/// Replays are repeatable: running the computed schedule twice fires the
/// same assert after the same number of schedule positions.
#[test]
fn replay_is_deterministic() {
    let workload = clap_workloads::by_name("aget").expect("aget exists");
    let pipeline = Pipeline::new(workload.program());
    let config = config_for(&workload);
    let recorded = pipeline.record_failure(&config).expect("failure found");
    let report = pipeline
        .reproduce_from(&config, &recorded)
        .expect("reproduce");
    let trace = pipeline.symbolic_trace(&recorded).expect("trace");
    for _ in 0..3 {
        let replayed = clap_replay::replay(
            pipeline.program(),
            workload.model,
            pipeline.sharing().shared_spec(),
            &trace,
            &report.schedule,
            recorded.assert,
        )
        .expect("replay");
        assert!(replayed.reproduced);
        assert_eq!(
            replayed.positions_consumed,
            report.replay.positions_consumed
        );
    }
}

/// Table-harness helpers work end to end (used by the table binaries).
#[test]
fn bench_helpers_produce_rows() {
    let w = clap_workloads::by_name("sim_race").unwrap();
    let t1 = clap_bench::table1_row(&w).expect("table 1 row");
    assert!(t1.success);
    let heavy = clap_workloads::table2_suite()
        .into_iter()
        .find(|w| w.name == "racey")
        .expect("heavy racey");
    let t2 = clap_bench::table2_row(&heavy, 3);
    assert!(
        t2.leap_bytes > t2.clap_bytes,
        "CLAP logs beat LEAP on racey"
    );
}
